package obs

import (
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"strings"
)

// Flags holds the shared observability flag values every command
// registers: log level, log format, and the optional debug HTTP
// address. Register the flags with RegisterFlags, then call Setup
// after flag parsing.
type Flags struct {
	// Level is the minimum log level: debug, info, warn, or error.
	Level string
	// Format selects the slog handler: "text" or "json".
	Format string
	// DebugAddr, when non-empty, serves /debug/vars (expvar,
	// including the registry snapshot) and /debug/pprof on that
	// address.
	DebugAddr string
}

// RegisterFlags registers -log, -logfmt, and -debug-addr on fs and
// returns the struct the parsed values land in.
func RegisterFlags(fs *flag.FlagSet) *Flags {
	f := &Flags{}
	fs.StringVar(&f.Level, "log", "info", "log level: debug, info, warn, or error")
	fs.StringVar(&f.Format, "logfmt", "text", "log format: text or json")
	fs.StringVar(&f.DebugAddr, "debug-addr", "",
		"serve /debug/vars and /debug/pprof on this address (e.g. localhost:6060)")
	return f
}

// ParseLevel maps a level name to its slog.Level.
func ParseLevel(s string) (slog.Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return slog.LevelDebug, nil
	case "", "info":
		return slog.LevelInfo, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf("obs: unknown log level %q (want debug|info|warn|error)", s)
}

// NewLogger builds a slog.Logger writing to w in the given format at
// the given level.
func NewLogger(w io.Writer, format string, level slog.Level) (*slog.Logger, error) {
	opts := &slog.HandlerOptions{Level: level}
	switch strings.ToLower(strings.TrimSpace(format)) {
	case "", "text":
		return slog.New(slog.NewTextHandler(w, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	}
	return nil, fmt.Errorf("obs: unknown log format %q (want text|json)", format)
}

// Setup applies the parsed flags: it installs the process-default
// slog.Logger (writing to stderr) and, if -debug-addr was given,
// publishes reg through expvar and starts the debug HTTP server. The
// returned logger is also the new slog default.
func (f *Flags) Setup(reg *Registry) (*slog.Logger, error) {
	level, err := ParseLevel(f.Level)
	if err != nil {
		return nil, err
	}
	logger, err := NewLogger(os.Stderr, f.Format, level)
	if err != nil {
		return nil, err
	}
	slog.SetDefault(logger)
	if f.DebugAddr != "" {
		addr, err := ServeDebug(f.DebugAddr, reg)
		if err != nil {
			return nil, err
		}
		logger.Info("debug endpoint up", "addr", addr.String(),
			"vars", "/debug/vars", "pprof", "/debug/pprof/")
	}
	return logger, nil
}
