package obs

import (
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strings"
	"testing"
)

// Regression: with every sample in the overflow bucket the quantile
// used to interpolate between Min and Max as if the bucket had an
// upper bound, reporting values below the largest observation for high
// quantiles and above the last finite bound for all of them. Any rank
// landing in the overflow bucket must report the observed max.
func TestQuantileAllOverflow(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 5})
	h.Observe(20)
	h.Observe(30)
	s := h.Snapshot()
	for _, q := range []float64{0.01, 0.5, 0.99, 1} {
		if got := s.Quantile(q); got != 30 {
			t.Errorf("Quantile(%v) = %v, want max observed 30", q, got)
		}
	}
}

func TestQuantilePartialOverflow(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 5})
	h.Observe(0.5) // first bucket
	h.Observe(20)  // overflow
	s := h.Snapshot()
	if got := s.Quantile(0.99); got != 20 {
		t.Errorf("Quantile(0.99) = %v, want 20", got)
	}
	if got := s.Quantile(0.25); got >= 1 {
		t.Errorf("Quantile(0.25) = %v, want < 1 (first bucket)", got)
	}
}

func TestFloatGauge(t *testing.T) {
	reg := NewRegistry()
	reg.FloatGauge("online.ulp").Set(0.25)
	reg.FloatGauge(Label("online.mu_bps", "job", "delta-50ms")).Set(123456.5)
	if same := reg.FloatGauge("online.ulp"); same.Value() != 0.25 {
		t.Fatalf("FloatGauge not cached per name: %v", same.Value())
	}
	snap := reg.Snapshot()
	if got := snap.FloatGauges["online.ulp"]; got != 0.25 {
		t.Fatalf("snapshot float gauge = %v, want 0.25", got)
	}

	var b strings.Builder
	if err := WritePrometheus(&b, reg); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE online_ulp gauge",
		"online_ulp 0.25",
		`online_mu_bps{job="delta-50ms"} 123456.5`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q:\n%s", want, out)
		}
	}
}

func TestProcessCollector(t *testing.T) {
	reg := NewRegistry()
	c := NewProcessCollector(reg)
	c.Collect() // baseline
	runtime.GC()
	runtime.GC()
	c.Collect()

	if g := reg.Gauge("process.goroutines").Value(); g < 1 {
		t.Errorf("process.goroutines = %d, want >= 1", g)
	}
	if g := reg.Gauge("process.heap.alloc_bytes").Value(); g <= 0 {
		t.Errorf("process.heap.alloc_bytes = %d, want > 0", g)
	}
	if g := reg.Gauge("process.mem.total_bytes").Value(); g <= 0 {
		t.Errorf("process.mem.total_bytes = %d, want > 0", g)
	}
	if g := reg.Gauge("process.gc.cycles").Value(); g < 2 {
		t.Errorf("process.gc.cycles = %d, want >= 2 after two forced GCs", g)
	}
	if n := reg.Histogram("process.gc_pauses_ns", gcPauseBounds).Count(); n < 1 {
		t.Errorf("process.gc_pauses_ns count = %d, want >= 1 after forced GC", n)
	}
}

func TestServeDebugProcessMetricsAndExtensions(t *testing.T) {
	HandleDebug("/obs-test-extra", http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprint(w, "extra-ok")
	}))
	reg := NewRegistry()
	addr, err := ServeDebug("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}

	body := func(path string) string {
		resp, err := http.Get("http://" + addr.String() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("read %s: %v", path, err)
		}
		return string(b)
	}

	if got := body("/obs-test-extra"); got != "extra-ok" {
		t.Errorf("extension handler body = %q", got)
	}
	metrics := body("/metrics")
	for _, want := range []string{"process_goroutines ", "process_heap_alloc_bytes ", "process_gc_pauses_ns_count"} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}
