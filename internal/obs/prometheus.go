package obs

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// This file renders a Registry in the Prometheus text exposition
// format (version 0.0.4), so the same registry the run manifests
// snapshot is scrapeable live from the -debug-addr endpoint. Names
// built with Label ("base{k1=v1,k2=v2}") are parsed back into metric
// families with proper Prometheus labels; dots in names become
// underscores ("sim.queue.occupancy" → "sim_queue_occupancy").
// Histograms are exposed the Prometheus way: cumulative _bucket series
// with le labels, plus _sum and _count. Output ordering is fully
// deterministic (families and series sorted by name), which keeps the
// endpoint diffable and golden-testable.

// WritePrometheus writes a snapshot of reg to w in the Prometheus text
// exposition format.
func WritePrometheus(w io.Writer, reg *Registry) error {
	snap := reg.Snapshot()
	fams := make(map[string]*promFamily)

	for raw, v := range snap.Counters {
		base, labels := promName(raw)
		fams[base] = appendBlock(fams[base], "counter", labels,
			base+labels+" "+strconv.FormatInt(v, 10))
	}
	for raw, v := range snap.Gauges {
		base, labels := promName(raw)
		fams[base] = appendBlock(fams[base], "gauge", labels,
			base+labels+" "+strconv.FormatInt(v, 10))
	}
	for raw, v := range snap.FloatGauges {
		base, labels := promName(raw)
		fams[base] = appendBlock(fams[base], "gauge", labels,
			base+labels+" "+promFloat(v))
	}
	for raw, h := range snap.Histograms {
		base, labels := promName(raw)
		lines := make([]string, 0, len(h.Bounds)+3)
		var cum int64
		for i, b := range h.Bounds {
			cum += h.Counts[i]
			lines = append(lines, base+"_bucket"+withLe(labels, promFloat(b))+" "+
				strconv.FormatInt(cum, 10))
		}
		lines = append(lines,
			base+"_bucket"+withLe(labels, "+Inf")+" "+strconv.FormatInt(h.Count, 10),
			base+"_sum"+labels+" "+promFloat(h.Sum),
			base+"_count"+labels+" "+strconv.FormatInt(h.Count, 10))
		fams[base] = appendBlock(fams[base], "histogram", labels, lines...)
	}

	names := make([]string, 0, len(fams))
	for name := range fams {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		f := fams[name]
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", name, f.typ); err != nil {
			return err
		}
		sort.SliceStable(f.blocks, func(i, j int) bool { return f.blocks[i].key < f.blocks[j].key })
		for _, b := range f.blocks {
			for _, line := range b.lines {
				if _, err := io.WriteString(w, line+"\n"); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// PrometheusHandler serves reg in the text exposition format — the
// /metrics endpoint.
func PrometheusHandler(reg *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		var b strings.Builder
		if err := WritePrometheus(&b, reg); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		io.WriteString(w, b.String()) //nolint:errcheck // client gone
	})
}

// promFamily collects one metric family: all series sharing a base
// name, each series a block of pre-rendered lines (one line for
// counters and gauges, the bucket/sum/count group for histograms).
// Blocks sort by label block so a family's series have a stable order
// while a histogram's buckets keep their le order.
type promFamily struct {
	typ    string
	blocks []promBlock
}

type promBlock struct {
	key   string
	lines []string
}

func appendBlock(f *promFamily, typ, key string, lines ...string) *promFamily {
	if f == nil {
		f = &promFamily{typ: typ}
	}
	f.blocks = append(f.blocks, promBlock{key: key, lines: lines})
	return f
}

// promName splits a registry name built by Label into a sanitized
// Prometheus metric name and a rendered label block ("" or
// `{k="v",...}`).
func promName(raw string) (base, labels string) {
	name, rest, ok := strings.Cut(raw, "{")
	base = sanitizeName(name)
	if !ok {
		return base, ""
	}
	rest = strings.TrimSuffix(rest, "}")
	var b strings.Builder
	b.WriteByte('{')
	for i, pair := range strings.Split(rest, ",") {
		k, v, _ := strings.Cut(pair, "=")
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(sanitizeLabel(k))
		b.WriteString(`="`)
		b.WriteString(escapeValue(v))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return base, b.String()
}

// withLe appends an le label to a rendered label block.
func withLe(labels, bound string) string {
	le := `le="` + bound + `"`
	if labels == "" {
		return "{" + le + "}"
	}
	return labels[:len(labels)-1] + "," + le + "}"
}

// sanitizeName maps a registry name onto the Prometheus metric name
// alphabet [a-zA-Z0-9_:], with a leading underscore if the first rune
// would be a digit.
func sanitizeName(s string) string {
	var b strings.Builder
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
			b.WriteRune(r)
		case r >= '0' && r <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// sanitizeLabel is sanitizeName for label names, which do not allow
// colons.
func sanitizeLabel(s string) string {
	return strings.ReplaceAll(sanitizeName(s), ":", "_")
}

// escapeValue escapes a label value per the exposition format.
func escapeValue(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return s
}

// promFloat renders a float the way Prometheus expects (shortest
// round-trip representation).
func promFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
