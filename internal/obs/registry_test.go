package obs

import (
	"math"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Errorf("counter = %d, want 42", got)
	}
	if r.Counter("c") != c {
		t.Error("counter lookup is not stable")
	}

	g := r.Gauge("g")
	g.Set(7)
	g.Add(-2)
	if got := g.Value(); got != 5 {
		t.Errorf("gauge = %d, want 5", got)
	}
	g.SetMax(3)
	if got := g.Value(); got != 5 {
		t.Errorf("SetMax lowered the gauge to %d", got)
	}
	g.SetMax(9)
	if got := g.Value(); got != 9 {
		t.Errorf("SetMax(9) = %d", got)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 5, 10})
	for v := 1; v <= 100; v++ {
		h.Observe(float64(v) / 10) // 0.1 .. 10.0 uniform
	}
	s := h.Snapshot()
	if s.Count != 100 {
		t.Fatalf("count = %d", s.Count)
	}
	if math.Abs(s.Mean-5.05) > 1e-9 {
		t.Errorf("mean = %v, want 5.05", s.Mean)
	}
	if s.Min != 0.1 || s.Max != 10 {
		t.Errorf("min/max = %v/%v", s.Min, s.Max)
	}
	// The true median is ~5.05; bucket interpolation should land in
	// the right bucket (2, 5] comfortably.
	if s.P50 < 2 || s.P50 > 6 {
		t.Errorf("p50 = %v, want ≈5", s.P50)
	}
	if s.P99 < 9 || s.P99 > 10 {
		t.Errorf("p99 = %v, want ≈9.9", s.P99)
	}
	if q := s.Quantile(1); q != 10 {
		t.Errorf("q(1) = %v, want max", q)
	}
}

func TestHistogramEmptySnapshotIsZero(t *testing.T) {
	s := NewHistogram(nil).Snapshot()
	if s.Count != 0 || s.Min != 0 || s.Max != 0 || s.P50 != 0 {
		t.Errorf("empty snapshot not zeroed: %+v", s)
	}
	if s.Quantile(0.5) != 0 {
		t.Error("empty quantile not zero")
	}
}

func TestTimer(t *testing.T) {
	r := NewRegistry()
	tm := r.Timer("op")
	tm.Observe(10 * time.Millisecond)
	tm.Time(func() {})
	stop := tm.Start()
	stop()
	if got := r.Histogram("op", nil).Count(); got != 3 {
		t.Errorf("timer recorded %d observations, want 3", got)
	}
}

func TestLabel(t *testing.T) {
	if got := Label("q.drop"); got != "q.drop" {
		t.Errorf("Label no-kv = %q", got)
	}
	got := Label("q.drop", "dir", "fwd", "queue", "paris1")
	if got != "q.drop{dir=fwd,queue=paris1}" {
		t.Errorf("Label = %q", got)
	}
}

// TestRegistryConcurrentWriters hammers one counter, one gauge, and
// one histogram from many goroutines; totals must be exact and the
// race detector quiet.
func TestRegistryConcurrentWriters(t *testing.T) {
	r := NewRegistry()
	const workers = 8
	const perWorker = 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				r.Counter("events").Inc()
				r.Gauge("hwm").SetMax(int64(w*perWorker + i))
				r.Histogram("lat", nil).Observe(float64(i%100) / 1000)
			}
		}(w)
	}
	wg.Wait()
	if got := r.Counter("events").Value(); got != workers*perWorker {
		t.Errorf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := r.Gauge("hwm").Value(); got != workers*perWorker-1 {
		t.Errorf("gauge high water = %d, want %d", got, workers*perWorker-1)
	}
	s := r.Histogram("lat", nil).Snapshot()
	if s.Count != workers*perWorker {
		t.Errorf("histogram count = %d, want %d", s.Count, workers*perWorker)
	}
	var bucketSum int64
	for _, c := range s.Counts {
		bucketSum += c
	}
	if bucketSum != s.Count {
		t.Errorf("bucket sum %d != count %d", bucketSum, s.Count)
	}
}

// TestSnapshotWhileWriting takes snapshots concurrently with writers;
// every snapshot must be internally consistent (bucket sum equals
// count) and monotone in time.
func TestSnapshotWhileWriting(t *testing.T) {
	r := NewRegistry()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				r.Counter("c").Inc()
				r.Histogram("h", []float64{1, 10, 100}).Observe(float64(i % 200))
			}
		}(w)
	}
	var lastCount int64
	for i := 0; i < 200; i++ {
		s := r.Snapshot()
		if s.Counters["c"] < lastCount {
			t.Fatalf("counter went backwards: %d -> %d", lastCount, s.Counters["c"])
		}
		lastCount = s.Counters["c"]
		h := s.Histograms["h"]
		var sum int64
		for _, c := range h.Counts {
			sum += c
		}
		if sum != h.Count {
			t.Fatalf("snapshot %d: bucket sum %d != count %d", i, sum, h.Count)
		}
	}
	close(stop)
	wg.Wait()
}

// TestConcurrentLookup creates metrics by name from many goroutines;
// the same name must always resolve to the same object.
func TestConcurrentLookup(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	counters := make([]*Counter, 16)
	for i := range counters {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			counters[i] = r.Counter("shared")
			counters[i].Inc()
		}(i)
	}
	wg.Wait()
	for i, c := range counters {
		if c != counters[0] {
			t.Fatalf("goroutine %d got a different counter", i)
		}
	}
	if got := counters[0].Value(); got != 16 {
		t.Errorf("shared counter = %d, want 16", got)
	}
}
