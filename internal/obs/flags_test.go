package obs

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strings"
	"testing"
	"time"
)

func TestRegisterFlagsDefaults(t *testing.T) {
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	f := RegisterFlags(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if f.Level != "info" || f.Format != "text" || f.DebugAddr != "" {
		t.Errorf("defaults = %+v", f)
	}
	if err := fs.Parse([]string{"-log", "debug", "-logfmt", "json"}); err != nil {
		t.Fatal(err)
	}
	if f.Level != "debug" || f.Format != "json" {
		t.Errorf("parsed = %+v", f)
	}
}

func TestParseLevel(t *testing.T) {
	for in, want := range map[string]slog.Level{
		"debug": slog.LevelDebug,
		"Info":  slog.LevelInfo,
		"WARN":  slog.LevelWarn,
		"error": slog.LevelError,
		"":      slog.LevelInfo,
	} {
		got, err := ParseLevel(in)
		if err != nil || got != want {
			t.Errorf("ParseLevel(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Error("ParseLevel accepted garbage")
	}
}

func TestNewLoggerFormats(t *testing.T) {
	var buf bytes.Buffer
	lg, err := NewLogger(&buf, "json", slog.LevelInfo)
	if err != nil {
		t.Fatal(err)
	}
	lg.Info("hello", "k", 1)
	var m map[string]any
	if err := json.Unmarshal(buf.Bytes(), &m); err != nil {
		t.Fatalf("json handler wrote non-JSON %q: %v", buf.String(), err)
	}
	if m["msg"] != "hello" {
		t.Errorf("msg = %v", m["msg"])
	}

	buf.Reset()
	lg, err = NewLogger(&buf, "text", slog.LevelWarn)
	if err != nil {
		t.Fatal(err)
	}
	lg.Info("dropped")
	lg.Warn("kept")
	out := buf.String()
	if strings.Contains(out, "dropped") || !strings.Contains(out, "kept") {
		t.Errorf("level filtering broken: %q", out)
	}

	if _, err := NewLogger(io.Discard, "xml", slog.LevelInfo); err == nil {
		t.Error("NewLogger accepted unknown format")
	}
}

// TestServeDebug starts the debug endpoint on a free port and checks
// that /debug/vars carries the registry snapshot and /debug/pprof/
// answers.
func TestServeDebug(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("sim.events").Add(123)
	addr, err := ServeDebug("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	client := &http.Client{Timeout: 5 * time.Second}

	resp, err := client.Get(fmt.Sprintf("http://%s/debug/vars", addr))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var vars struct {
		Netprobe Snapshot `json:"netprobe"`
	}
	if err := json.Unmarshal(body, &vars); err != nil {
		t.Fatalf("/debug/vars is not JSON: %v", err)
	}
	if vars.Netprobe.Counters["sim.events"] != 123 {
		t.Errorf("registry not visible via expvar: %+v", vars.Netprobe)
	}

	resp, err = client.Get(fmt.Sprintf("http://%s/debug/pprof/", addr))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("/debug/pprof/ status %d", resp.StatusCode)
	}

	// A second server re-points the published variable instead of
	// panicking on the duplicate expvar name.
	reg2 := NewRegistry()
	reg2.Counter("sim.events").Add(7)
	if _, err := ServeDebug("127.0.0.1:0", reg2); err != nil {
		t.Fatal(err)
	}
	resp, err = client.Get(fmt.Sprintf("http://%s/debug/vars", addr))
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if err := json.Unmarshal(body, &vars); err != nil {
		t.Fatal(err)
	}
	if vars.Netprobe.Counters["sim.events"] != 7 {
		t.Errorf("expvar still serving old registry: %+v", vars.Netprobe)
	}
}
