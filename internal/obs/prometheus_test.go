package obs

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestWritePrometheusGolden pins the exposition output for one of each
// metric kind, labelled and unlabelled: family ordering, label
// parsing, cumulative buckets, and the le="+Inf"/_sum/_count tail are
// all byte-stable.
func TestWritePrometheusGolden(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("sim.events.dispatched").Add(12)
	reg.Counter(Label("sim.queue.dropped", "queue", "bn", "dir", "fwd")).Add(3)
	reg.Gauge("runner.workers").Set(4)
	reg.Gauge(Label("runner.worker.inflight", "worker", "1")).Set(2)
	h := reg.Histogram(Label("sim.queue.occupancy", "queue", "bn"), []float64{1, 2, 4})
	h.Observe(0)
	h.Observe(1)
	h.Observe(3)
	h.Observe(9)

	var b strings.Builder
	if err := WritePrometheus(&b, reg); err != nil {
		t.Fatal(err)
	}
	want := `# TYPE runner_worker_inflight gauge
runner_worker_inflight{worker="1"} 2
# TYPE runner_workers gauge
runner_workers 4
# TYPE sim_events_dispatched counter
sim_events_dispatched 12
# TYPE sim_queue_dropped counter
sim_queue_dropped{queue="bn",dir="fwd"} 3
# TYPE sim_queue_occupancy histogram
sim_queue_occupancy_bucket{queue="bn",le="1"} 2
sim_queue_occupancy_bucket{queue="bn",le="2"} 2
sim_queue_occupancy_bucket{queue="bn",le="4"} 3
sim_queue_occupancy_bucket{queue="bn",le="+Inf"} 4
sim_queue_occupancy_sum{queue="bn"} 13
sim_queue_occupancy_count{queue="bn"} 4
`
	if got := b.String(); got != want {
		t.Errorf("exposition mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestWritePrometheusDeterministic: repeated renders of the same
// registry are byte-identical (map iteration order must not leak).
func TestWritePrometheusDeterministic(t *testing.T) {
	reg := NewRegistry()
	for _, name := range []string{"z.last", "a.first", "m.mid"} {
		reg.Counter(name).Inc()
		reg.Gauge(name + ".g").Set(1)
		reg.Histogram(name+".h", []float64{1}).Observe(0.5)
	}
	var first string
	for i := 0; i < 10; i++ {
		var b strings.Builder
		if err := WritePrometheus(&b, reg); err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			first = b.String()
		} else if b.String() != first {
			t.Fatalf("render %d differs from first", i)
		}
	}
}

// TestPrometheusSanitization: names outside the Prometheus alphabet
// and label values needing escapes are handled.
func TestPrometheusSanitization(t *testing.T) {
	reg := NewRegistry()
	reg.Counter(Label("odd-name.metric", "path", `C:\x "y"`)).Inc()
	var b strings.Builder
	if err := WritePrometheus(&b, reg); err != nil {
		t.Fatal(err)
	}
	want := "# TYPE odd_name_metric counter\n" +
		`odd_name_metric{path="C:\\x \"y\""} 1` + "\n"
	if got := b.String(); got != want {
		t.Errorf("got:\n%s\nwant:\n%s", got, want)
	}
}

// TestPrometheusHandler: the HTTP handler serves the exposition with
// the version 0.0.4 content type.
func TestPrometheusHandler(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("sim.events.dispatched").Add(5)
	srv := httptest.NewServer(PrometheusHandler(reg))
	defer srv.Close()
	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("content type %q lacks exposition version", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), "sim_events_dispatched 5") {
		t.Errorf("body missing counter:\n%s", body)
	}
}

// TestServeDebugMetricsEndpoint: /metrics is wired next to
// /debug/vars on the debug server.
func TestServeDebugMetricsEndpoint(t *testing.T) {
	reg := NewRegistry()
	reg.Gauge("runner.workers").Set(3)
	addr, err := ServeDebug("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + addr.String() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), "runner_workers 3") {
		t.Errorf("/metrics missing gauge:\n%s", body)
	}
}
