package obs

import (
	"fmt"
	"runtime"
)

// Version identifies the build. It defaults to "dev" and is meant to
// be injected at link time:
//
//	go build -ldflags "-X netprobe/internal/obs.Version=$(git describe --always --dirty)" ./...
//
// Every command exposes it through the shared -version flag (see
// Flags), the build.info metric on /metrics, and the /statusz
// document.
var Version = "dev"

// BuildString renders the one-line build identity the -version flag
// prints: program version plus the Go toolchain that compiled it.
func BuildString(program string) string {
	return fmt.Sprintf("%s %s (%s %s/%s)", program, Version, runtime.Version(), runtime.GOOS, runtime.GOARCH)
}

// RegisterBuildInfo publishes the conventional build-info metric: a
// constant-1 gauge whose labels carry the version identities, so a
// scraper can join any other series against the code that produced it:
//
//	build_info{version="v1.2.3",go="go1.24.0"} 1
func RegisterBuildInfo(reg *Registry) {
	reg.Gauge(Label("build.info", "version", Version, "go", runtime.Version())).Set(1)
}
