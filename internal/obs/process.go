package obs

import (
	"math"
	"runtime/metrics"
	"sync"
)

// ProcessCollector samples runtime/metrics into a Registry so process
// health (goroutine count, heap size, GC pauses) is scrapeable from
// /metrics alongside the domain metrics. Sampling is pull-driven:
// Collect is called by the /metrics handler on each scrape, so an idle
// process costs nothing. GC pause counts are cumulative in the
// runtime, so the collector keeps the previous sample and feeds only
// the delta into the registry histogram (bucket midpoints, converted
// to nanoseconds).
type ProcessCollector struct {
	reg *Registry

	mu       sync.Mutex
	samples  []metrics.Sample
	lastGC   metrics.Float64Histogram
	hasGC    bool
	pauses   *Histogram
	firstRun bool
}

// Runtime metric names sampled per scrape, dispatched by name in
// Collect.
var processMetricNames = []string{
	"/sched/goroutines:goroutines",
	"/memory/classes/heap/objects:bytes",
	"/gc/heap/goal:bytes",
	"/memory/classes/total:bytes",
	"/gc/cycles/total:gc-cycles",
	"/gc/pauses:seconds",
}

// gcPauseBounds covers 1µs..1s in nanoseconds, log-spaced — real GC
// pauses sit in the 10µs..10ms band, the tails catch pathology.
var gcPauseBounds = func() []float64 {
	var b []float64
	for e := 3; e <= 9; e++ {
		p := math.Pow(10, float64(e))
		b = append(b, p, 2.5*p, 5*p)
	}
	return b
}()

// NewProcessCollector builds a collector writing process.* metrics
// into reg. The first Collect establishes the GC-pause baseline (the
// runtime histogram is cumulative since process start), so pauses
// observed before the collector existed are not replayed.
func NewProcessCollector(reg *Registry) *ProcessCollector {
	samples := make([]metrics.Sample, len(processMetricNames))
	for i, name := range processMetricNames {
		samples[i].Name = name
	}
	c := &ProcessCollector{
		reg:      reg,
		samples:  samples,
		pauses:   reg.Histogram("process.gc_pauses_ns", gcPauseBounds),
		firstRun: true,
	}
	return c
}

// Collect samples the runtime and updates the registry.
func (c *ProcessCollector) Collect() {
	c.mu.Lock()
	defer c.mu.Unlock()
	metrics.Read(c.samples)
	for _, s := range c.samples {
		switch s.Name {
		case "/sched/goroutines:goroutines":
			c.reg.Gauge("process.goroutines").Set(int64(s.Value.Uint64()))
		case "/memory/classes/heap/objects:bytes":
			c.reg.Gauge("process.heap.alloc_bytes").Set(int64(s.Value.Uint64()))
		case "/gc/heap/goal:bytes":
			c.reg.Gauge("process.heap.goal_bytes").Set(int64(s.Value.Uint64()))
		case "/memory/classes/total:bytes":
			c.reg.Gauge("process.mem.total_bytes").Set(int64(s.Value.Uint64()))
		case "/gc/cycles/total:gc-cycles":
			c.reg.Gauge("process.gc.cycles").Set(int64(s.Value.Uint64()))
		case "/gc/pauses:seconds":
			if s.Value.Kind() == metrics.KindFloat64Histogram {
				c.observePauseDelta(s.Value.Float64Histogram())
			}
		}
	}
	c.firstRun = false
}

// observePauseDelta feeds the per-bucket count growth since the last
// sample into the registry histogram, one observation per pause at the
// bucket midpoint (ns). The first sample only records the baseline.
func (c *ProcessCollector) observePauseDelta(h *metrics.Float64Histogram) {
	if h == nil {
		return
	}
	if !c.firstRun && c.hasGC && len(c.lastGC.Counts) == len(h.Counts) {
		for i, n := range h.Counts {
			d := n - c.lastGC.Counts[i]
			if d == 0 {
				continue
			}
			mid := bucketMidNs(h.Buckets, i)
			for k := uint64(0); k < d; k++ {
				c.pauses.Observe(mid)
			}
		}
	}
	// Keep a private copy: the runtime may reuse the slices.
	c.lastGC.Counts = append(c.lastGC.Counts[:0], h.Counts...)
	c.lastGC.Buckets = append(c.lastGC.Buckets[:0], h.Buckets...)
	c.hasGC = true
}

// bucketMidNs is the midpoint of bucket i of a runtime histogram in
// nanoseconds. The first boundary can be -Inf and the last +Inf; those
// buckets collapse onto their finite edge.
func bucketMidNs(bounds []float64, i int) float64 {
	lo, hi := bounds[i], bounds[i+1]
	switch {
	case math.IsInf(lo, -1) && math.IsInf(hi, 1):
		return 0
	case math.IsInf(lo, -1):
		return hi * 1e9
	case math.IsInf(hi, 1):
		return lo * 1e9
	}
	return (lo + hi) / 2 * 1e9
}
