package obs

import (
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
)

// expvar.Publish panics on duplicate names, so the registry variable
// is published exactly once and re-pointed on later ServeDebug calls
// (tests start several servers in one process).
var publishState struct {
	mu  sync.Mutex
	reg *Registry
	set bool
}

func publishRegistry(reg *Registry) {
	publishState.mu.Lock()
	defer publishState.mu.Unlock()
	publishState.reg = reg
	if publishState.set {
		return
	}
	publishState.set = true
	expvar.Publish("netprobe", expvar.Func(func() any {
		publishState.mu.Lock()
		r := publishState.reg
		publishState.mu.Unlock()
		if r == nil {
			return nil
		}
		return r.Snapshot()
	}))
}

// ServeDebug publishes reg under the expvar name "netprobe" and
// serves /metrics (Prometheus text exposition), /debug/vars, and
// /debug/pprof/* on addr in a background goroutine, returning the
// bound address (useful with ":0"). The server lives for the
// remainder of the process; commands treat it as a debugging tap, not
// a managed component.
func ServeDebug(addr string, reg *Registry) (net.Addr, error) {
	publishRegistry(reg)
	mux := http.NewServeMux()
	mux.Handle("/metrics", PrometheusHandler(reg))
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: mux}
	go srv.Serve(ln) //nolint:errcheck // shut down with the process
	return ln.Addr(), nil
}
