package obs

import (
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"sync/atomic"
)

// expvar.Publish panics on duplicate names, so the registry variable
// is published exactly once and re-pointed on later ServeDebug calls
// (tests start several servers in one process).
var publishState struct {
	mu  sync.Mutex
	reg *Registry
	set bool
}

func publishRegistry(reg *Registry) {
	publishState.mu.Lock()
	defer publishState.mu.Unlock()
	publishState.reg = reg
	if publishState.set {
		return
	}
	publishState.set = true
	expvar.Publish("netprobe", expvar.Func(func() any {
		publishState.mu.Lock()
		r := publishState.reg
		publishState.mu.Unlock()
		if r == nil {
			return nil
		}
		return r.Snapshot()
	}))
}

// Extra handlers registered by other packages (e.g. the online
// analysis engine) before the debug server starts; ServeDebug mounts
// them next to the built-in endpoints.
var extraHandlers struct {
	mu       sync.Mutex
	patterns []string
	handlers map[string]http.Handler
}

// Per-scrape collectors: functions run at the top of every /metrics
// request so pull-derived values (the process collector's runtime
// stats, the pipeline ledger's unaccounted gauge) are fresh without
// any background refresher goroutine. The slice is copy-on-write
// behind an atomic pointer: registration copies, running loads — so
// the time-series sampler can run the hooks every tick without
// allocating.
var scrapeHooks struct {
	mu  sync.Mutex // serializes writers
	fns atomic.Pointer[[]func()]
}

// OnScrape registers fn to run before every /metrics exposition (on
// every debug server, current and future) and every time-series
// sample. Use it for gauges computed from other counters rather than
// written on a hot path.
func OnScrape(fn func()) {
	scrapeHooks.mu.Lock()
	defer scrapeHooks.mu.Unlock()
	var old []func()
	if p := scrapeHooks.fns.Load(); p != nil {
		old = *p
	}
	fns := make([]func(), len(old)+1)
	copy(fns, old)
	fns[len(old)] = fn
	scrapeHooks.fns.Store(&fns)
}

// RunScrapeHooks runs every OnScrape hook once. /metrics does this per
// scrape; the time-series store does it per sample so pull-derived
// gauges are fresh in each history row.
func RunScrapeHooks() {
	p := scrapeHooks.fns.Load()
	if p == nil {
		return
	}
	for _, fn := range *p {
		fn()
	}
}

// HandleDebug registers handler at pattern on every debug server
// started after the call. Registering the same pattern again replaces
// the handler (commands and tests re-wire across runs). It must be
// called before ServeDebug to take effect for that server.
func HandleDebug(pattern string, handler http.Handler) {
	extraHandlers.mu.Lock()
	defer extraHandlers.mu.Unlock()
	if extraHandlers.handlers == nil {
		extraHandlers.handlers = make(map[string]http.Handler)
	}
	if _, ok := extraHandlers.handlers[pattern]; !ok {
		extraHandlers.patterns = append(extraHandlers.patterns, pattern)
	}
	extraHandlers.handlers[pattern] = handler
}

// ServeDebug publishes reg under the expvar name "netprobe" and
// serves /metrics (Prometheus text exposition, with process.* runtime
// metrics and OnScrape hooks refreshed per scrape), /healthz (the
// DefaultHealth liveness/readiness probe), /statusz (build info,
// uptime, and every registered StatusSection), /debug/vars,
// /debug/pprof/*, and any HandleDebug extensions on addr in a
// background goroutine, returning the bound address (useful with
// ":0"). The server lives for the remainder of the process; commands
// treat it as a debugging tap, not a managed component.
func ServeDebug(addr string, reg *Registry) (net.Addr, error) {
	publishRegistry(reg)
	proc := NewProcessCollector(reg)
	proc.Collect() // establish the GC-pause baseline now, not on first scrape
	metricsHandler := PrometheusHandler(reg)
	mux := http.NewServeMux()
	mux.Handle("/metrics", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		proc.Collect()
		RunScrapeHooks()
		metricsHandler.ServeHTTP(w, r)
	}))
	mux.Handle("/healthz", DefaultHealth.Handler())
	mux.Handle("/statusz", StatusHandler(DefaultHealth))
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	extraHandlers.mu.Lock()
	for _, pattern := range extraHandlers.patterns {
		mux.Handle(pattern, extraHandlers.handlers[pattern])
	}
	extraHandlers.mu.Unlock()
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: mux}
	go srv.Serve(ln) //nolint:errcheck // shut down with the process
	return ln.Addr(), nil
}
