package obs

import (
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestStatuszGoldenSchema pins the /statusz JSON schema. The document
// mixes identity fields that necessarily vary run to run (pid, start
// time, toolchain) with structure that must not drift silently — key
// names, section nesting, the problems array shape. Volatile values
// are replaced with fixed placeholders before comparing against the
// golden file, so the test locks the schema without locking the
// environment. Run with -update to accept intentional schema changes.
func TestStatuszGoldenSchema(t *testing.T) {
	h := NewHealth()
	h.SetError("listener", errors.New("bind: address in use"))
	StatusSection("fixture", func() any {
		return map[string]any{"series": 3, "active": []string{"loss(online.ulp)"}}
	})

	rec := httptest.NewRecorder()
	StatusHandler(h).ServeHTTP(rec, httptest.NewRequest("GET", "/statusz", nil))
	if rec.Code != 200 {
		t.Fatalf("status = %d", rec.Code)
	}

	var doc map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatalf("bad /statusz JSON: %v", err)
	}
	// Every volatile field must exist with the right dynamic type
	// before it is masked; a missing key is a schema break.
	for key, placeholder := range map[string]any{
		"program":    "PROGRAM",
		"version":    "VERSION",
		"go":         "GO",
		"pid":        float64(-1),
		"start_time": "START_TIME",
		"uptime_sec": float64(-1),
	} {
		got, ok := doc[key]
		if !ok {
			t.Fatalf("/statusz missing %q: %v", key, doc)
		}
		switch placeholder.(type) {
		case string:
			if _, ok := got.(string); !ok {
				t.Fatalf("/statusz %q = %T, want string", key, got)
			}
		case float64:
			if _, ok := got.(float64); !ok {
				t.Fatalf("/statusz %q = %T, want number", key, got)
			}
		}
		doc[key] = placeholder
	}

	// The section registry is process-global and other tests register
	// their own sections, so keep only this test's fixture: the golden
	// pins the nesting shape, not the neighbors.
	sections, ok := doc["sections"].(map[string]any)
	if !ok {
		t.Fatalf("/statusz sections = %T, want object", doc["sections"])
	}
	fixture, ok := sections["fixture"]
	if !ok {
		t.Fatalf("/statusz missing the registered fixture section: %v", sections)
	}
	doc["sections"] = map[string]any{"fixture": fixture}

	// map keys marshal sorted, so the normalized document is
	// deterministic byte for byte.
	got, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')

	golden := filepath.Join("testdata", "statusz.golden.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", golden)
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("/statusz schema drifted from golden file.\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}
