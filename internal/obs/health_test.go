package obs

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
)

func getJSON(t *testing.T, h http.Handler) (int, map[string]any) {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/", nil))
	var doc map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatalf("bad JSON body %q: %v", rec.Body.String(), err)
	}
	return rec.Code, doc
}

// TestHealthHandlerFlips walks a Health through its lifecycle and pins
// the HTTP contract: 200 {"status":"ok"} while ready, 503
// {"status":"degraded"} with reasons while not, alive:true throughout.
func TestHealthHandlerFlips(t *testing.T) {
	h := NewHealth()
	code, doc := getJSON(t, h.Handler())
	if code != http.StatusOK || doc["status"] != "ok" || doc["alive"] != true {
		t.Fatalf("empty health: code=%d doc=%v", code, doc)
	}

	h.SetError("listener", errors.New("bind: address in use"))
	code, doc = getJSON(t, h.Handler())
	if code != http.StatusServiceUnavailable || doc["status"] != "degraded" {
		t.Fatalf("failed condition: code=%d doc=%v", code, doc)
	}
	if !strings.Contains(fmt.Sprint(doc["problems"]), "address in use") {
		t.Fatalf("reason missing from %v", doc["problems"])
	}
	if doc["alive"] != true {
		t.Fatal("a degraded process is still alive")
	}

	h.SetError("listener", nil) // clearing restores readiness
	if code, _ := getJSON(t, h.Handler()); code != http.StatusOK {
		t.Fatalf("cleared condition still failing: %d", code)
	}

	// Live checks are evaluated per probe: the same handler flips as
	// the checked state changes, no SetError calls needed.
	stale := true
	h.AddCheck("sources", func() error {
		if stale {
			return errors.New("stale sources: probe-a")
		}
		return nil
	})
	if code, _ := getJSON(t, h.Handler()); code != http.StatusServiceUnavailable {
		t.Fatal("failing live check did not degrade")
	}
	stale = false
	if code, _ := getJSON(t, h.Handler()); code != http.StatusOK {
		t.Fatal("passing live check still degraded")
	}
	stale = true
	h.Remove("sources")
	if code, _ := getJSON(t, h.Handler()); code != http.StatusOK {
		t.Fatal("removed check still evaluated")
	}
}

// TestProblemsSorted: multiple failures report deterministically.
func TestProblemsSorted(t *testing.T) {
	h := NewHealth()
	h.SetError("zebra", errors.New("z"))
	h.SetError("alpha", errors.New("a"))
	h.AddCheck("mid", func() error { return errors.New("m") })
	p := h.Problems()
	if len(p) != 3 || p[0].Component != "alpha" || p[1].Component != "mid" || p[2].Component != "zebra" {
		t.Fatalf("problems not sorted: %+v", p)
	}
}

// TestStatusHandler pins the /statusz document shape: build identity,
// health verdict, and registered sections.
func TestStatusHandler(t *testing.T) {
	h := NewHealth()
	StatusSection("test-section", func() any { return map[string]int{"n": 42} })
	// Re-registering replaces, not duplicates.
	StatusSection("test-section", func() any { return map[string]int{"n": 43} })

	code, doc := getJSON(t, StatusHandler(h))
	if code != http.StatusOK || doc["status"] != "ok" {
		t.Fatalf("statusz: code=%d doc=%v", code, doc)
	}
	if doc["version"] != Version || doc["go"] != runtime.Version() {
		t.Fatalf("build identity wrong: %v", doc)
	}
	sections, _ := doc["sections"].(map[string]any)
	sec, _ := sections["test-section"].(map[string]any)
	if sec["n"] != float64(43) {
		t.Fatalf("section not rendered/replaced: %v", sections)
	}

	// /statusz reports degradation but stays HTTP 200: it is a
	// diagnostics page, not a probe endpoint.
	h.SetError("x", errors.New("boom"))
	code, doc = getJSON(t, StatusHandler(h))
	if code != http.StatusOK || doc["status"] != "degraded" {
		t.Fatalf("degraded statusz: code=%d doc=%v", code, doc)
	}
}

// TestRegistryUnregister: deleted metrics vanish from snapshots (the
// lifecycle behind per-job online.* gauge cleanup), and re-creating
// the name starts fresh.
func TestRegistryUnregister(t *testing.T) {
	reg := NewRegistry()
	reg.Gauge(Label("online.ulp", "job", "a")).Set(7)
	reg.Gauge(Label("online.ulp", "job", "b")).Set(9)
	reg.Counter("keep").Inc()

	reg.Unregister(Label("online.ulp", "job", "a"), "never-existed")
	snap := reg.Snapshot()
	if _, ok := snap.Gauges[Label("online.ulp", "job", "a")]; ok {
		t.Fatal("unregistered gauge still in snapshot")
	}
	if snap.Gauges[Label("online.ulp", "job", "b")] != 9 {
		t.Fatal("sibling gauge lost")
	}
	if snap.Counters["keep"] != 1 {
		t.Fatal("unrelated counter lost")
	}
	// The name is free again: a new registration starts at zero, not at
	// the dead gauge's last value.
	if v := reg.Gauge(Label("online.ulp", "job", "a")).Value(); v != 0 {
		t.Fatalf("recreated gauge inherited value %d", v)
	}
}

// TestBuildInfoMetric: the conventional constant-1 gauge with identity
// labels.
func TestBuildInfoMetric(t *testing.T) {
	reg := NewRegistry()
	RegisterBuildInfo(reg)
	name := Label("build.info", "version", Version, "go", runtime.Version())
	if v := reg.Snapshot().Gauges[name]; v != 1 {
		t.Fatalf("%s = %d, want 1", name, v)
	}
	if !strings.Contains(BuildString("prog"), Version) {
		t.Fatalf("BuildString misses version: %q", BuildString("prog"))
	}
}
