// Package obs is the repository's instrumentation layer: a
// dependency-free, race-safe metrics registry (counters, gauges,
// fixed-bucket histograms with quantile estimates, and timers), a
// shared structured-logging setup built on log/slog, and an optional
// debug HTTP endpoint exposing the registry through expvar alongside
// net/http/pprof.
//
// The paper this repository reproduces is measurement all the way
// down; obs turns the same discipline on our own machinery. The
// simulator records events dispatched, heap occupancy, and per-queue
// drops; the experiment runner records per-job wall times and worker
// utilization; the real-network prober reports in-flight loss and
// delay quantiles. Everything is observational: writers use atomics,
// snapshots never block writers, and none of it perturbs the
// deterministic simulation (instrumented and uninstrumented runs
// produce byte-identical traces).
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n; negative n is a programming error but is not checked on
// the hot path.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value reports the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an instantaneous atomic value.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adjusts the gauge by d (d may be negative).
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// SetMax raises the gauge to v if v exceeds the current value —
// high-water-mark semantics, safe under concurrent writers.
func (g *Gauge) SetMax(v int64) {
	for {
		cur := g.v.Load()
		if v <= cur || g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Value reports the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// FloatGauge is an instantaneous atomic float64 value, for quantities
// that are ratios or estimates rather than counts (loss probabilities,
// bandwidth estimates). Writers should not store NaN or Inf: snapshots
// feed JSON documents, which cannot represent them.
type FloatGauge struct {
	v atomicFloat
}

// Set stores v.
func (g *FloatGauge) Set(v float64) { g.v.store(v) }

// Add adjusts the gauge by d (d may be negative).
func (g *FloatGauge) Add(d float64) { g.v.add(d) }

// Value reports the current value.
func (g *FloatGauge) Value() float64 { return g.v.load() }

// atomicFloat is a float64 with atomic add/min/max via CAS on the
// bit pattern.
type atomicFloat struct {
	bits atomic.Uint64
}

func (f *atomicFloat) load() float64 { return math.Float64frombits(f.bits.Load()) }

func (f *atomicFloat) store(v float64) { f.bits.Store(math.Float64bits(v)) }

func (f *atomicFloat) add(v float64) {
	for {
		old := f.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if f.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

func (f *atomicFloat) min(v float64) {
	for {
		old := f.bits.Load()
		if math.Float64frombits(old) <= v {
			return
		}
		if f.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

func (f *atomicFloat) max(v float64) {
	for {
		old := f.bits.Load()
		if math.Float64frombits(old) >= v {
			return
		}
		if f.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Histogram counts observations into fixed buckets with the given
// upper bounds plus an implicit overflow bucket, and tracks count,
// sum, min, and max. Observation is lock-free; Snapshot may run
// concurrently with writers and sees a consistent-enough view for
// monitoring (bucket counts are each atomically read).
type Histogram struct {
	bounds []float64 // sorted inclusive upper bounds
	counts []atomic.Int64
	count  atomic.Int64
	sum    atomicFloat
	min    atomicFloat
	max    atomicFloat
}

// DefaultBounds is a wide log-spaced bucket layout (1e-6 up to 1e4)
// suitable for seconds-valued timers and most ratio metrics.
var DefaultBounds = func() []float64 {
	var b []float64
	for exp := -6; exp <= 4; exp++ {
		base := math.Pow(10, float64(exp))
		b = append(b, base, 2.5*base, 5*base)
	}
	return b
}()

// NewHistogram returns a histogram with the given bucket upper
// bounds; nil or empty bounds use DefaultBounds. Bounds are sorted
// and deduplicated.
func NewHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefaultBounds
	}
	bs := append([]float64(nil), bounds...)
	sort.Float64s(bs)
	uniq := bs[:1]
	for _, b := range bs[1:] {
		if b != uniq[len(uniq)-1] {
			uniq = append(uniq, b)
		}
	}
	h := &Histogram{
		bounds: uniq,
		counts: make([]atomic.Int64, len(uniq)+1),
	}
	h.min.store(math.Inf(1))
	h.max.store(math.Inf(-1))
	return h
}

// Observe records v.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.add(v)
	h.min.min(v)
	h.max.max(v)
}

// Count reports the number of observations so far.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Snapshot captures the histogram's current state, including p50,
// p90, and p99 estimates.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	h.SnapshotInto(&s)
	return s
}

// SnapshotInto fills s with the histogram's current state, reusing
// s.Counts when its capacity suffices so periodic samplers (the
// time-series store) can snapshot without allocating. Bounds is shared
// with the histogram, not copied; callers must treat it as read-only.
func (h *Histogram) SnapshotInto(s *HistogramSnapshot) {
	if cap(s.Counts) < len(h.counts) {
		s.Counts = make([]int64, len(h.counts))
	}
	*s = HistogramSnapshot{
		Bounds: h.bounds,
		Counts: s.Counts[:len(h.counts)],
	}
	for i := range h.counts {
		c := h.counts[i].Load()
		s.Counts[i] = c
		s.Count += c
	}
	if s.Count == 0 {
		return
	}
	s.Sum = h.sum.load()
	s.Min = h.min.load()
	s.Max = h.max.load()
	s.Mean = s.Sum / float64(s.Count)
	s.P50 = s.Quantile(0.50)
	s.P90 = s.Quantile(0.90)
	s.P99 = s.Quantile(0.99)
}

// HistogramSnapshot is a point-in-time copy of a histogram. Counts has
// one entry per bound plus a final overflow bucket. Min/Max/Mean and
// the quantile fields are zero when Count is zero, so the snapshot
// always marshals to valid JSON (no NaN/Inf).
type HistogramSnapshot struct {
	Count  int64     `json:"count"`
	Sum    float64   `json:"sum"`
	Min    float64   `json:"min"`
	Max    float64   `json:"max"`
	Mean   float64   `json:"mean"`
	P50    float64   `json:"p50"`
	P90    float64   `json:"p90"`
	P99    float64   `json:"p99"`
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"`
}

// Quantile estimates the q-quantile (q in [0, 1]) by linear
// interpolation inside the bucket holding the target rank, clamped to
// the observed [Min, Max]. With no observations it returns 0.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	rank := q * float64(s.Count)
	var cum float64
	for i, c := range s.Counts {
		next := cum + float64(c)
		if next >= rank && c > 0 {
			if i == len(s.Bounds) {
				// The overflow bucket has no upper bound, so
				// interpolating inside it would fabricate a value below
				// the largest observation; the observed maximum is the
				// only defensible estimate there.
				return s.Max
			}
			lo := s.Min
			if i > 0 {
				lo = s.Bounds[i-1]
			}
			hi := s.Max
			if i < len(s.Bounds) && s.Bounds[i] < hi {
				hi = s.Bounds[i]
			}
			if lo < s.Min {
				lo = s.Min
			}
			if hi < lo {
				hi = lo
			}
			frac := (rank - cum) / float64(c)
			return lo + frac*(hi-lo)
		}
		cum = next
	}
	return s.Max
}

// Timer records durations into a histogram in seconds.
type Timer struct {
	h *Histogram
}

// Observe records one duration.
func (t *Timer) Observe(d time.Duration) { t.h.Observe(d.Seconds()) }

// Time runs fn and records how long it took.
func (t *Timer) Time(fn func()) {
	start := time.Now()
	fn()
	t.Observe(time.Since(start))
}

// Start begins a timing; calling the returned func records the
// elapsed duration.
func (t *Timer) Start() func() {
	start := time.Now()
	return func() { t.Observe(time.Since(start)) }
}

// Registry is a named collection of metrics. Lookup creates on first
// use and is guarded by a mutex; the returned metric objects are
// lock-free, so a registry may be shared by many goroutines (e.g. all
// workers of a simulation sweep writing sim counters concurrently).
// The zero value is not usable; call NewRegistry.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	fgauges  map[string]*FloatGauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		fgauges:  make(map[string]*FloatGauge),
		hists:    make(map[string]*Histogram),
	}
}

// Default is the process-wide registry the commands publish to.
var Default = NewRegistry()

// Counter returns the counter with the given name, creating it on
// first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge with the given name, creating it on first
// use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// FloatGauge returns the float gauge with the given name, creating it
// on first use.
func (r *Registry) FloatGauge(name string) *FloatGauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.fgauges[name]
	if !ok {
		g = &FloatGauge{}
		r.fgauges[name] = g
	}
	return g
}

// Histogram returns the histogram with the given name, creating it
// with the given bounds on first use (nil bounds = DefaultBounds).
// Later calls ignore bounds.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = NewHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// Timer returns a seconds-valued timer backed by the histogram with
// the given name.
func (r *Registry) Timer(name string) *Timer {
	return &Timer{h: r.Histogram(name, nil)}
}

// Unregister removes the named metrics (counters, gauges, float
// gauges, and histograms alike) from the registry, so they no longer
// appear in snapshots or on /metrics. Unknown names are ignored. A
// later lookup under the same name creates a fresh zero-valued metric;
// writers still holding the old object keep a detached counter that is
// simply never exported again. Long-lived servers use this to bound
// scrape cardinality: per-job gauges are unregistered when the job's
// analyzers are finalized (see internal/online).
func (r *Registry) Unregister(names ...string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, name := range names {
		delete(r.counters, name)
		delete(r.gauges, name)
		delete(r.fgauges, name)
		delete(r.hists, name)
	}
}

// EachCounter calls fn for every registered counter. Iteration holds
// the registry mutex, so fn must be quick and must not re-enter the
// registry. Order is unspecified (map order). The time-series store
// uses these visitors to sample without building snapshot maps.
func (r *Registry) EachCounter(fn func(name string, c *Counter)) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for k, v := range r.counters {
		fn(k, v)
	}
}

// EachGauge calls fn for every registered gauge; see EachCounter for
// the locking contract.
func (r *Registry) EachGauge(fn func(name string, g *Gauge)) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for k, v := range r.gauges {
		fn(k, v)
	}
}

// EachFloatGauge calls fn for every registered float gauge; see
// EachCounter for the locking contract.
func (r *Registry) EachFloatGauge(fn func(name string, g *FloatGauge)) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for k, v := range r.fgauges {
		fn(k, v)
	}
}

// EachHistogram calls fn for every registered histogram; see
// EachCounter for the locking contract.
func (r *Registry) EachHistogram(fn func(name string, h *Histogram)) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for k, v := range r.hists {
		fn(k, v)
	}
}

// Snapshot captures every metric in the registry. It is safe to call
// while writers are active.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	fgauges := make(map[string]*FloatGauge, len(r.fgauges))
	for k, v := range r.fgauges {
		fgauges[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	r.mu.Unlock()

	s := Snapshot{
		Counters:   make(map[string]int64, len(counters)),
		Gauges:     make(map[string]int64, len(gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(hists)),
	}
	for k, c := range counters {
		s.Counters[k] = c.Value()
	}
	for k, g := range gauges {
		s.Gauges[k] = g.Value()
	}
	if len(fgauges) > 0 {
		s.FloatGauges = make(map[string]float64, len(fgauges))
		for k, g := range fgauges {
			s.FloatGauges[k] = g.Value()
		}
	}
	for k, h := range hists {
		s.Histograms[k] = h.Snapshot()
	}
	return s
}

// Snapshot is a point-in-time copy of a registry, shaped for JSON
// (run manifests, the expvar debug endpoint).
type Snapshot struct {
	Counters    map[string]int64             `json:"counters,omitempty"`
	Gauges      map[string]int64             `json:"gauges,omitempty"`
	FloatGauges map[string]float64           `json:"float_gauges,omitempty"`
	Histograms  map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Label builds a metric name of the form base{k1=v1,k2=v2} from
// alternating key/value pairs. Labels are appended in the order
// given; callers wanting stable names should pass keys in a fixed
// order.
func Label(base string, kv ...string) string {
	if len(kv) == 0 {
		return base
	}
	var b strings.Builder
	b.WriteString(base)
	b.WriteByte('{')
	for i := 0; i+1 < len(kv); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%s", kv[i], kv[i+1])
	}
	b.WriteByte('}')
	return b.String()
}
