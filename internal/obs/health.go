package obs

import (
	"encoding/json"
	"net/http"
	"os"
	"runtime"
	"sort"
	"sync"
	"time"
)

// processStart anchors the uptime reported by /healthz and /statusz.
var processStart = time.Now()

// Uptime is how long this process has been running.
func Uptime() time.Duration { return time.Since(processStart) }

// Health tracks a process's liveness and readiness as a set of named
// component conditions. Serving /healthz at all is the liveness
// signal; readiness is the conjunction of every registered condition.
// Two kinds of condition exist:
//
//   - static errors, set and cleared by the component as its state
//     changes (SetError with nil clears), e.g. "relay listener failed
//     to bind";
//   - live checks, functions evaluated at request time, e.g. "is any
//     connected source silent past the staleness threshold" — state
//     that only an observer-relative clock can decide.
//
// All methods are safe for concurrent use.
type Health struct {
	mu     sync.Mutex
	errs   map[string]string
	checks map[string]func() error
}

// NewHealth returns an empty (ready) Health.
func NewHealth() *Health {
	return &Health{
		errs:   make(map[string]string),
		checks: make(map[string]func() error),
	}
}

// DefaultHealth is the process-wide health state ServeDebug exposes at
// /healthz on every -debug-addr server.
var DefaultHealth = NewHealth()

// SetError records component as failed for the given reason; a nil err
// clears the condition. Use it for state transitions the component
// itself observes (a bind failure, a closed upstream).
func (h *Health) SetError(component string, err error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if err == nil {
		delete(h.errs, component)
		return
	}
	h.errs[component] = err.Error()
}

// AddCheck registers a live readiness check evaluated on every probe.
// fn returns nil when the component is healthy. Registering the same
// component again replaces the check.
func (h *Health) AddCheck(component string, fn func() error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.checks[component] = fn
}

// Remove drops both the static condition and the live check registered
// under component (used by components shutting down cleanly).
func (h *Health) Remove(component string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	delete(h.errs, component)
	delete(h.checks, component)
}

// Problem is one failing readiness condition.
type Problem struct {
	Component string `json:"component"`
	Reason    string `json:"reason"`
}

// Problems evaluates every condition and returns the failing ones,
// sorted by component. An empty slice means ready.
func (h *Health) Problems() []Problem {
	h.mu.Lock()
	out := make([]Problem, 0, len(h.errs))
	for c, reason := range h.errs {
		out = append(out, Problem{Component: c, Reason: reason})
	}
	checks := make(map[string]func() error, len(h.checks))
	for c, fn := range h.checks {
		checks[c] = fn
	}
	h.mu.Unlock()
	// Checks run outside the lock: they may take other locks (a relay's
	// source table) and must not deadlock against SetError from there.
	for c, fn := range checks {
		if err := fn(); err != nil {
			out = append(out, Problem{Component: c, Reason: err.Error()})
		}
	}
	sort.Slice(out, func(i, k int) bool { return out[i].Component < out[k].Component })
	return out
}

// healthDoc is the GET /healthz body.
type healthDoc struct {
	// Status is "ok" when every readiness condition passes, "degraded"
	// otherwise. The HTTP status mirrors it: 200 vs 503.
	Status string `json:"status"`
	// Alive is always true: a process that can serve this document is
	// live regardless of readiness (liveness probes key on the HTTP
	// round trip or this field, readiness probes on Status).
	Alive     bool      `json:"alive"`
	UptimeSec float64   `json:"uptime_sec"`
	Problems  []Problem `json:"problems,omitempty"`
}

// Handler serves GET /healthz: HTTP 200 with {"status":"ok"} while
// every condition passes, HTTP 503 with {"status":"degraded"} and the
// failure reasons otherwise.
func (h *Health) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		problems := h.Problems()
		doc := healthDoc{Status: "ok", Alive: true, UptimeSec: Uptime().Seconds(), Problems: problems}
		code := http.StatusOK
		if len(problems) > 0 {
			doc.Status = "degraded"
			code = http.StatusServiceUnavailable
		}
		writeJSON(w, code, doc)
	})
}

// Status sections registered by other packages; /statusz renders each
// section's provider output under its name. Providers must return
// JSON-serializable values and be safe for concurrent calls.
var statusSections struct {
	mu       sync.Mutex
	names    []string
	provider map[string]func() any
}

// StatusSection registers (or replaces) a named section of the
// /statusz document. Components register once at startup — e.g. the
// relay's per-source table, the pipeline ledger, the online engine's
// queue depths.
func StatusSection(name string, fn func() any) {
	statusSections.mu.Lock()
	defer statusSections.mu.Unlock()
	if statusSections.provider == nil {
		statusSections.provider = make(map[string]func() any)
	}
	if _, ok := statusSections.provider[name]; !ok {
		statusSections.names = append(statusSections.names, name)
	}
	statusSections.provider[name] = fn
}

// statusDoc is the GET /statusz body.
type statusDoc struct {
	Program   string         `json:"program"`
	Version   string         `json:"version"`
	Go        string         `json:"go"`
	PID       int            `json:"pid"`
	StartTime time.Time      `json:"start_time"`
	UptimeSec float64        `json:"uptime_sec"`
	Status    string         `json:"status"`
	Problems  []Problem      `json:"problems,omitempty"`
	Sections  map[string]any `json:"sections,omitempty"`
}

// StatusHandler serves GET /statusz: build identity, uptime, the
// health verdict, and every registered status section — the one-stop
// "what is this process doing" page next to /metrics' time series.
func StatusHandler(h *Health) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		problems := h.Problems()
		doc := statusDoc{
			Program:   filepathBase(os.Args[0]),
			Version:   Version,
			Go:        runtime.Version(),
			PID:       os.Getpid(),
			StartTime: processStart,
			UptimeSec: Uptime().Seconds(),
			Status:    "ok",
			Problems:  problems,
		}
		if len(problems) > 0 {
			doc.Status = "degraded"
		}
		statusSections.mu.Lock()
		names := append([]string(nil), statusSections.names...)
		providers := make([]func() any, len(names))
		for i, n := range names {
			providers[i] = statusSections.provider[n]
		}
		statusSections.mu.Unlock()
		if len(names) > 0 {
			doc.Sections = make(map[string]any, len(names))
			for i, n := range names {
				doc.Sections[n] = providers[i]()
			}
		}
		writeJSON(w, http.StatusOK, doc)
	})
}

// filepathBase avoids importing path/filepath for one call on a
// display-only string (os.Args[0] may be a bare name or a path).
func filepathBase(p string) string {
	for i := len(p) - 1; i >= 0; i-- {
		if p[i] == '/' || p[i] == '\\' {
			return p[i+1:]
		}
	}
	return p
}

func writeJSON(w http.ResponseWriter, code int, doc any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(doc) //nolint:errcheck // client gone
}
