package obs

import (
	"math/rand"
	"testing"
)

// TestQuantileMonotonic pins the estimator's basic sanity: for a fixed
// snapshot, Quantile must be non-decreasing in q and confined to the
// observed [Min, Max], including across the finite-bucket/overflow
// seam where the interpolation rule changes.
func TestQuantileMonotonic(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	shapes := map[string]func() *Histogram{
		"spread": func() *Histogram {
			h := NewHistogram([]float64{1, 2, 5, 10})
			for i := 0; i < 500; i++ {
				h.Observe(rng.Float64() * 8)
			}
			return h
		},
		"with-overflow": func() *Histogram {
			h := NewHistogram([]float64{1, 2, 5})
			for i := 0; i < 200; i++ {
				h.Observe(rng.Float64() * 20) // ~3/4 land past the last bound
			}
			return h
		},
		"single-bucket": func() *Histogram {
			h := NewHistogram([]float64{1, 2, 5})
			for i := 0; i < 50; i++ {
				h.Observe(1.5)
			}
			return h
		},
		"sparse": func() *Histogram {
			h := NewHistogram([]float64{1, 2, 5, 10, 100})
			h.Observe(0.5)
			h.Observe(50)
			return h
		},
	}
	for name, build := range shapes {
		s := build().Snapshot()
		prev := s.Min
		for q := 0.0; q <= 1.0; q += 0.01 {
			got := s.Quantile(q)
			if got < prev {
				t.Fatalf("%s: Quantile(%.2f) = %v < Quantile(%.2f) = %v: not monotone",
					name, q, got, q-0.01, prev)
			}
			if got < s.Min || got > s.Max {
				t.Fatalf("%s: Quantile(%.2f) = %v outside observed [%v, %v]",
					name, q, got, s.Min, s.Max)
			}
			prev = got
		}
	}
}

// TestQuantileInterpolates pins that quantiles inside a finite bucket
// are linearly interpolated across the bucket, not snapped to a bucket
// edge: different ranks landing in the same bucket must yield
// different estimates.
func TestQuantileInterpolates(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 5})
	for i := 0; i < 50; i++ { // all mass in the (2, 5] bucket
		h.Observe(2.5)
		h.Observe(4.5)
	}
	s := h.Snapshot()
	q25, q75 := s.Quantile(0.25), s.Quantile(0.75)
	if q25 <= 2 || q75 > 5 {
		t.Fatalf("quantiles left the winning bucket: q25=%v q75=%v", q25, q75)
	}
	if q25 >= q75 {
		t.Fatalf("no interpolation inside the bucket: q25=%v q75=%v", q25, q75)
	}
	// The observed extremes clamp the bucket: with every sample equal,
	// Min == Max == 3 and any quantile must report exactly that.
	exact := NewHistogram([]float64{1, 2, 5})
	exact.Observe(3)
	es := exact.Snapshot()
	for _, q := range []float64{0.01, 0.5, 0.99} {
		if got := es.Quantile(q); got != 3 {
			t.Errorf("single-observation Quantile(%v) = %v, want the observation 3", q, got)
		}
	}
}
