package stats

import (
	"math"
	"math/rand"
	"testing"
)

func TestVarianceTimeWhiteNoiseDecaysLikeOneOverM(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	xs := make([]float64, 100_000)
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	vt := VarianceTime(xs, []int{1, 10, 100})
	// Var of m-means of unit-variance iid ≈ 1/m.
	if math.Abs(vt[1]-1) > 0.05 {
		t.Fatalf("vt[1] = %v, want ≈1", vt[1])
	}
	if math.Abs(vt[10]-0.1) > 0.02 {
		t.Fatalf("vt[10] = %v, want ≈0.1", vt[10])
	}
	if math.Abs(vt[100]-0.01) > 0.005 {
		t.Fatalf("vt[100] = %v, want ≈0.01", vt[100])
	}
}

func TestVarianceTimeBurstySlowDecay(t *testing.T) {
	// Strongly positively correlated series (AR φ=0.95): block means
	// retain far more variance than 1/m predicts.
	rng := rand.New(rand.NewSource(8))
	xs := make([]float64, 100_000)
	for i := 1; i < len(xs); i++ {
		xs[i] = 0.95*xs[i-1] + rng.NormFloat64()
	}
	vt := VarianceTime(xs, []int{1, 100})
	ratio := vt[100] / vt[1]
	if ratio < 5.0/100 {
		t.Fatalf("correlated series decayed like white noise: ratio %v", ratio)
	}
}

func TestVarianceTimeEdgeCases(t *testing.T) {
	vt := VarianceTime([]float64{1, 2, 3}, []int{0, -1, 2, 4, 3})
	if _, ok := vt[0]; ok {
		t.Fatal("scale 0 accepted")
	}
	if _, ok := vt[4]; ok {
		t.Fatal("scale larger than the series accepted")
	}
	if _, ok := vt[3]; ok {
		t.Fatal("single-block scale should be skipped (no variance)")
	}
	if _, ok := vt[2]; ok {
		// Blocks: [1,2] → only one full block of 2 from 3 samples?
		// i=0 gives [1,2]; i=2 would need 4 samples. One mean only.
		t.Fatal("one-block scale should be skipped")
	}
}

func TestHurstWhiteNoiseNearHalf(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	xs := make([]float64, 200_000)
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	vt := VarianceTime(xs, []int{1, 4, 16, 64, 256})
	h, err := HurstFromVarianceTime(vt)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(h-0.5) > 0.05 {
		t.Fatalf("white-noise Hurst = %v, want ≈0.5", h)
	}
}

func TestHurstPersistentProcessAboveHalf(t *testing.T) {
	// A long-memory-ish construction: sum of sinusoids plus strongly
	// autocorrelated AR noise retains variance across scales.
	rng := rand.New(rand.NewSource(10))
	xs := make([]float64, 200_000)
	for i := 1; i < len(xs); i++ {
		xs[i] = 0.97*xs[i-1] + rng.NormFloat64()
	}
	vt := VarianceTime(xs, []int{1, 4, 16, 64})
	h, err := HurstFromVarianceTime(vt)
	if err != nil {
		t.Fatal(err)
	}
	if h < 0.7 {
		t.Fatalf("persistent-process Hurst = %v, want well above 0.5", h)
	}
}

func TestHurstErrors(t *testing.T) {
	if _, err := HurstFromVarianceTime(map[int]float64{1: 1}); err == nil {
		t.Fatal("single scale accepted")
	}
	if _, err := HurstFromVarianceTime(map[int]float64{1: -1, 2: 0}); err == nil {
		t.Fatal("degenerate variances accepted")
	}
}
