// Package stats provides the statistical machinery used by the
// paper's analysis: summary statistics, histograms and empirical
// distributions (Figures 8–9), autocorrelation and periodograms
// (the spectral/diurnal analysis of related work [19] used as a
// baseline), and constant-plus-gamma distribution fitting (the delay
// model reported in [19]).
//
// All routines operate on float64 slices; time series of durations
// are converted to the unit of the caller's choice first.
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrEmpty is returned by routines that need at least one observation.
var ErrEmpty = errors.New("stats: empty sample")

// Summary holds the usual descriptive statistics of a sample.
type Summary struct {
	N        int
	Mean     float64
	Variance float64 // unbiased (n-1 denominator); 0 for n==1
	Std      float64
	Min      float64
	Max      float64
	Median   float64
}

// Summarize computes descriptive statistics. It returns ErrEmpty for
// an empty sample.
func Summarize(xs []float64) (Summary, error) {
	if len(xs) == 0 {
		return Summary{}, ErrEmpty
	}
	s := Summary{N: len(xs), Min: xs[0], Max: xs[0]}
	sum := 0.0
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(s.N)
	if s.N > 1 {
		ss := 0.0
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.Variance = ss / float64(s.N-1)
		s.Std = math.Sqrt(s.Variance)
	}
	s.Median = Quantile(xs, 0.5)
	return s, nil
}

// Quantile returns the p-quantile (0 ≤ p ≤ 1) of xs using linear
// interpolation between order statistics. It copies and sorts
// internally; it panics on an empty sample or p outside [0,1].
func Quantile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		panic("stats: Quantile of empty sample")
	}
	if p < 0 || p > 1 {
		panic("stats: quantile probability out of [0,1]")
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return quantileSorted(sorted, p)
}

func quantileSorted(sorted []float64, p float64) float64 {
	n := len(sorted)
	if n == 1 {
		return sorted[0]
	}
	pos := p * float64(n-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Mean returns the arithmetic mean, or NaN for an empty sample.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Min returns the smallest element; it panics on an empty sample.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: Min of empty sample")
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Autocorrelation returns the sample autocorrelation function of xs at
// lags 0..maxLag (inclusive). The lag-0 value is always 1. If the
// sample variance is zero the function is 1 at lag 0 and 0 elsewhere.
func Autocorrelation(xs []float64, maxLag int) []float64 {
	n := len(xs)
	if maxLag >= n {
		maxLag = n - 1
	}
	if maxLag < 0 {
		return nil
	}
	mean := Mean(xs)
	denom := 0.0
	for _, x := range xs {
		d := x - mean
		denom += d * d
	}
	acf := make([]float64, maxLag+1)
	acf[0] = 1
	if denom == 0 {
		return acf
	}
	for lag := 1; lag <= maxLag; lag++ {
		num := 0.0
		for i := 0; i+lag < n; i++ {
			num += (xs[i] - mean) * (xs[i+lag] - mean)
		}
		acf[lag] = num / denom
	}
	return acf
}

// VarianceTime computes the aggregate-variance curve of xs: for each
// aggregation scale m in scales, the series is averaged over
// non-overlapping blocks of m samples and the variance of the block
// means is reported. For short-range-dependent traffic the curve
// falls like 1/m; slower decay indicates burstiness persisting across
// time scales — the "structure of the Internet load over different
// time scales" the paper's probing is designed to expose.
func VarianceTime(xs []float64, scales []int) map[int]float64 {
	out := make(map[int]float64, len(scales))
	for _, m := range scales {
		if m <= 0 || m > len(xs) {
			continue
		}
		var means []float64
		for i := 0; i+m <= len(xs); i += m {
			means = append(means, Mean(xs[i:i+m]))
		}
		if len(means) < 2 {
			continue
		}
		s, err := Summarize(means)
		if err != nil {
			continue
		}
		out[m] = s.Variance
	}
	return out
}

// HurstFromVarianceTime estimates the Hurst exponent H from an
// aggregate-variance curve: for a self-similar process the block-mean
// variance scales like m^{2H−2}, so H is read from the slope of
// log-variance against log-scale. H = 0.5 for short-range-dependent
// traffic; H approaching 1 marks the burstiness-across-all-scales that
// the self-similarity literature found in exactly the era's traffic.
// It returns an error with fewer than two usable scales.
func HurstFromVarianceTime(vt map[int]float64) (float64, error) {
	var xs, ys []float64
	for m, v := range vt {
		if m <= 0 || v <= 0 {
			continue
		}
		xs = append(xs, math.Log(float64(m)))
		ys = append(ys, math.Log(v))
	}
	if len(xs) < 2 {
		return 0, errors.New("stats: need at least two scales for a Hurst estimate")
	}
	// Least-squares slope.
	mx, my := Mean(xs), Mean(ys)
	num, den := 0.0, 0.0
	for i := range xs {
		num += (xs[i] - mx) * (ys[i] - my)
		den += (xs[i] - mx) * (xs[i] - mx)
	}
	if den == 0 {
		return 0, errors.New("stats: degenerate scales")
	}
	slope := num / den
	return 1 + slope/2, nil
}

// KSDistance returns the two-sample Kolmogorov–Smirnov statistic: the
// maximum absolute difference between the empirical CDFs of a and b.
// It panics if either sample is empty.
func KSDistance(a, b []float64) float64 {
	if len(a) == 0 || len(b) == 0 {
		panic("stats: KSDistance of empty sample")
	}
	as := append([]float64(nil), a...)
	bs := append([]float64(nil), b...)
	sort.Float64s(as)
	sort.Float64s(bs)
	i, j := 0, 0
	d := 0.0
	for i < len(as) && j < len(bs) {
		v := math.Min(as[i], bs[j])
		for i < len(as) && as[i] == v {
			i++
		}
		for j < len(bs) && bs[j] == v {
			j++
		}
		diff := math.Abs(float64(i)/float64(len(as)) - float64(j)/float64(len(bs)))
		if diff > d {
			d = diff
		}
	}
	return d
}
