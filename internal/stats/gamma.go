package stats

import (
	"errors"
	"math"
)

// ConstantGamma is the "constant plus gamma" delay model that
// Mukherjee [19] found to best describe Internet round-trip delay
// distributions: rtt = Shift + G where G ~ Gamma(Shape, Scale). The
// paper uses that result as context; we implement the fit as the
// baseline methodology against which the phase-plot analysis is
// compared.
type ConstantGamma struct {
	Shift float64 // constant component (≈ fixed propagation delay D)
	Shape float64 // gamma shape k
	Scale float64 // gamma scale θ
}

// Mean reports the model mean Shift + Shape·Scale.
func (m ConstantGamma) Mean() float64 { return m.Shift + m.Shape*m.Scale }

// Variance reports the model variance Shape·Scale².
func (m ConstantGamma) Variance() float64 { return m.Shape * m.Scale * m.Scale }

// PDF evaluates the model density at x.
func (m ConstantGamma) PDF(x float64) float64 {
	y := x - m.Shift
	if y <= 0 {
		return 0
	}
	k, th := m.Shape, m.Scale
	lg, _ := math.Lgamma(k)
	return math.Exp((k-1)*math.Log(y) - y/th - lg - k*math.Log(th))
}

// CDF evaluates the model distribution function at x using the
// regularized lower incomplete gamma function.
func (m ConstantGamma) CDF(x float64) float64 {
	y := x - m.Shift
	if y <= 0 {
		return 0
	}
	return RegularizedGammaP(m.Shape, y/m.Scale)
}

// ErrDegenerate is returned when a sample has no spread and cannot
// support a gamma fit.
var ErrDegenerate = errors.New("stats: sample variance is zero")

// FitConstantGamma fits the constant-plus-gamma model by the method of
// moments. The shift is estimated as the sample minimum minus a small
// offset (one percent of the spread) so that all residuals are
// positive; shape and scale then follow from the residual mean and
// variance. It returns ErrEmpty or ErrDegenerate for unusable samples.
func FitConstantGamma(xs []float64) (ConstantGamma, error) {
	if len(xs) < 2 {
		return ConstantGamma{}, ErrEmpty
	}
	s, err := Summarize(xs)
	if err != nil {
		return ConstantGamma{}, err
	}
	if s.Variance == 0 {
		return ConstantGamma{}, ErrDegenerate
	}
	shift := s.Min - 0.01*(s.Max-s.Min)
	mean := s.Mean - shift
	// Residual variance equals sample variance (shift is constant).
	shape := mean * mean / s.Variance
	scale := s.Variance / mean
	return ConstantGamma{Shift: shift, Shape: shape, Scale: scale}, nil
}

// RegularizedGammaP computes P(a, x), the regularized lower incomplete
// gamma function, by series expansion for x < a+1 and by continued
// fraction otherwise. Accuracy is ~1e-12, ample for goodness-of-fit
// use. It panics for a <= 0 or x < 0.
func RegularizedGammaP(a, x float64) float64 {
	if a <= 0 || x < 0 {
		panic("stats: RegularizedGammaP domain error")
	}
	if x == 0 {
		return 0
	}
	if x < a+1 {
		return gammaPSeries(a, x)
	}
	return 1 - gammaQContinuedFraction(a, x)
}

func gammaPSeries(a, x float64) float64 {
	lg, _ := math.Lgamma(a)
	ap := a
	sum := 1 / a
	del := sum
	for i := 0; i < 500; i++ {
		ap++
		del *= x / ap
		sum += del
		if math.Abs(del) < math.Abs(sum)*1e-14 {
			break
		}
	}
	return sum * math.Exp(-x+a*math.Log(x)-lg)
}

func gammaQContinuedFraction(a, x float64) float64 {
	lg, _ := math.Lgamma(a)
	const tiny = 1e-300
	b := x + 1 - a
	c := 1 / tiny
	d := 1 / b
	h := d
	for i := 1; i < 500; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = b + an/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < 1e-14 {
			break
		}
	}
	return math.Exp(-x+a*math.Log(x)-lg) * h
}

// GammaSample draws one Gamma(shape, scale) variate using
// Marsaglia–Tsang with a uniform/normal source; it is used by tests
// and by synthetic workload generation.
func GammaSample(shape, scale float64, unif func() float64, norm func() float64) float64 {
	if shape < 1 {
		// Boost: Gamma(a) = Gamma(a+1) * U^(1/a).
		u := unif()
		for u == 0 {
			u = unif()
		}
		return GammaSample(shape+1, scale, unif, norm) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		x := norm()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := unif()
		if u < 1-0.0331*x*x*x*x {
			return d * v * scale
		}
		if u > 0 && math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v * scale
		}
	}
}
