package stats

import (
	"fmt"
	"math"
	"sort"
)

// Histogram is a fixed-bin-width histogram over [Lo, Hi). Values
// outside the range are counted in Under/Over rather than silently
// discarded, because for delay distributions the analyst must know
// about outliers.
type Histogram struct {
	Lo, Hi float64
	Width  float64
	Counts []int
	Under  int
	Over   int
	total  int
}

// NewHistogram returns a histogram with bins of the given width
// covering [lo, hi). It panics for a non-positive width or an empty
// range.
func NewHistogram(lo, hi, width float64) *Histogram {
	if width <= 0 {
		panic(fmt.Sprintf("stats: non-positive histogram bin width %v", width))
	}
	if hi <= lo {
		panic(fmt.Sprintf("stats: empty histogram range [%v,%v)", lo, hi))
	}
	n := int(math.Ceil((hi - lo) / width))
	return &Histogram{Lo: lo, Hi: hi, Width: width, Counts: make([]int, n)}
}

// Add counts one observation.
func (h *Histogram) Add(x float64) {
	h.total++
	if x < h.Lo {
		h.Under++
		return
	}
	i := int((x - h.Lo) / h.Width)
	if i >= len(h.Counts) {
		h.Over++
		return
	}
	h.Counts[i]++
}

// AddAll counts every observation in xs.
func (h *Histogram) AddAll(xs []float64) {
	for _, x := range xs {
		h.Add(x)
	}
}

// Total reports the number of observations added, including
// out-of-range ones.
func (h *Histogram) Total() int { return h.total }

// BinCenter reports the midpoint of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	return h.Lo + (float64(i)+0.5)*h.Width
}

// Fraction reports the fraction of all observations that fell in bin
// i. It is 0 when the histogram is empty.
func (h *Histogram) Fraction(i int) float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.Counts[i]) / float64(h.total)
}

// MaxCount reports the largest bin count.
func (h *Histogram) MaxCount() int {
	m := 0
	for _, c := range h.Counts {
		if c > m {
			m = c
		}
	}
	return m
}

// Mode reports the center of the fullest bin. For an empty histogram
// it returns the center of bin 0.
func (h *Histogram) Mode() float64 {
	best := 0
	for i, c := range h.Counts {
		if c > h.Counts[best] {
			best = i
		}
	}
	return h.BinCenter(best)
}

// Peak is a local maximum of a histogram.
type Peak struct {
	// Bin is the index of the peak bin.
	Bin int
	// Center is the bin's midpoint value.
	Center float64
	// Count is the bin count at the peak.
	Count int
}

// Peaks finds local maxima of the histogram, in descending count
// order. A bin is a peak if its count is at least minCount and at
// least as large as every bin within radius sep bins, with strict
// inequality against already accepted peaks' exclusion zones (so two
// peaks are at least sep bins apart). This is the routine used to read
// the multimodal workload distributions of Figures 8 and 9.
func (h *Histogram) Peaks(minCount, sep int) []Peak {
	if sep < 1 {
		sep = 1
	}
	type cand struct {
		bin, count int
	}
	var cands []cand
	for i, c := range h.Counts {
		if c < minCount {
			continue
		}
		isMax := true
		for j := i - sep; j <= i+sep; j++ {
			if j < 0 || j >= len(h.Counts) || j == i {
				continue
			}
			if h.Counts[j] > c || (h.Counts[j] == c && j < i) {
				isMax = false
				break
			}
		}
		if isMax {
			cands = append(cands, cand{i, c})
		}
	}
	// Greedy: take highest peaks first, suppress neighbours.
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].count != cands[j].count {
			return cands[i].count > cands[j].count
		}
		return cands[i].bin < cands[j].bin
	})
	var peaks []Peak
	taken := map[int]bool{}
	for _, c := range cands {
		ok := true
		for b := range taken {
			if abs(b-c.bin) <= sep {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		taken[c.bin] = true
		peaks = append(peaks, Peak{Bin: c.bin, Center: h.BinCenter(c.bin), Count: c.count})
	}
	return peaks
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// ECDF is an empirical cumulative distribution function.
type ECDF struct {
	sorted []float64
}

// NewECDF returns the empirical CDF of xs. It panics on an empty
// sample.
func NewECDF(xs []float64) *ECDF {
	if len(xs) == 0 {
		panic("stats: ECDF of empty sample")
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return &ECDF{sorted: s}
}

// At reports P(X ≤ x).
func (e *ECDF) At(x float64) float64 {
	i := sort.SearchFloat64s(e.sorted, math.Nextafter(x, math.Inf(1)))
	return float64(i) / float64(len(e.sorted))
}

// Quantile reports the p-quantile, 0 ≤ p ≤ 1.
func (e *ECDF) Quantile(p float64) float64 {
	if p < 0 || p > 1 {
		panic("stats: ECDF quantile probability out of [0,1]")
	}
	return quantileSorted(e.sorted, p)
}

// N reports the sample size.
func (e *ECDF) N() int { return len(e.sorted) }
