package stats

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFFTKnownTransform(t *testing.T) {
	// DFT of [1,1,1,1] is [4,0,0,0].
	xs := []complex128{1, 1, 1, 1}
	FFT(xs)
	want := []complex128{4, 0, 0, 0}
	for i := range xs {
		if cmplx.Abs(xs[i]-want[i]) > 1e-12 {
			t.Fatalf("FFT = %v, want %v", xs, want)
		}
	}
}

func TestFFTImpulse(t *testing.T) {
	// DFT of an impulse is flat ones.
	xs := make([]complex128, 8)
	xs[0] = 1
	FFT(xs)
	for i, v := range xs {
		if cmplx.Abs(v-1) > 1e-12 {
			t.Fatalf("bin %d = %v, want 1", i, v)
		}
	}
}

func TestFFTPanicsOnNonPowerOfTwo(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("FFT of length 6 did not panic")
		}
	}()
	FFT(make([]complex128, 6))
}

func TestIFFTInvertsFFT(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	xs := make([]complex128, 64)
	orig := make([]complex128, 64)
	for i := range xs {
		xs[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		orig[i] = xs[i]
	}
	FFT(xs)
	IFFT(xs)
	for i := range xs {
		if cmplx.Abs(xs[i]-orig[i]) > 1e-9 {
			t.Fatalf("round trip failed at %d: %v vs %v", i, xs[i], orig[i])
		}
	}
}

func TestFFTParseval(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	xs := make([]complex128, 128)
	timeEnergy := 0.0
	for i := range xs {
		xs[i] = complex(rng.NormFloat64(), 0)
		timeEnergy += real(xs[i]) * real(xs[i])
	}
	FFT(xs)
	freqEnergy := 0.0
	for _, v := range xs {
		freqEnergy += real(v)*real(v) + imag(v)*imag(v)
	}
	freqEnergy /= 128
	if math.Abs(timeEnergy-freqEnergy) > 1e-8*timeEnergy {
		t.Fatalf("Parseval violated: %v vs %v", timeEnergy, freqEnergy)
	}
}

func TestNextPow2(t *testing.T) {
	cases := []struct{ in, want int }{{0, 1}, {1, 1}, {2, 2}, {3, 4}, {800, 1024}, {1024, 1024}}
	for _, c := range cases {
		if got := NextPow2(c.in); got != c.want {
			t.Errorf("NextPow2(%d) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestPeriodogramFindsSinusoid(t *testing.T) {
	// 512 samples of a sinusoid with period 16 samples → frequency
	// 1/16 cycles per sample.
	n := 512
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = 5 + 3*math.Sin(2*math.Pi*float64(i)/16)
	}
	freq, power := DominantFrequency(xs)
	if math.Abs(freq-1.0/16) > 1e-9 {
		t.Fatalf("dominant frequency = %v, want 0.0625", freq)
	}
	if power <= 0 {
		t.Fatalf("power = %v, want > 0", power)
	}
}

func TestPeriodogramShortSeries(t *testing.T) {
	if f, p := DominantFrequency([]float64{1, 2}); f != 0 || p != 0 {
		t.Fatalf("short series = (%v,%v), want (0,0)", f, p)
	}
	if Periodogram(nil) != nil {
		t.Fatal("Periodogram(nil) should be nil")
	}
}

// Property: FFT is linear.
func TestFFTLinearityProperty(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 32
		a := make([]complex128, n)
		b := make([]complex128, n)
		sum := make([]complex128, n)
		for i := 0; i < n; i++ {
			a[i] = complex(rng.NormFloat64(), rng.NormFloat64())
			b[i] = complex(rng.NormFloat64(), rng.NormFloat64())
			sum[i] = a[i] + b[i]
		}
		FFT(a)
		FFT(b)
		FFT(sum)
		for i := 0; i < n; i++ {
			if cmplx.Abs(sum[i]-(a[i]+b[i])) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
