package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSummarizeBasics(t *testing.T) {
	s, err := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if err != nil {
		t.Fatal(err)
	}
	if s.N != 8 || s.Mean != 5 || s.Min != 2 || s.Max != 9 {
		t.Fatalf("summary = %+v", s)
	}
	if math.Abs(s.Variance-32.0/7.0) > 1e-12 {
		t.Fatalf("variance = %v, want %v", s.Variance, 32.0/7.0)
	}
	if s.Median != 4.5 {
		t.Fatalf("median = %v, want 4.5", s.Median)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	if _, err := Summarize(nil); err != ErrEmpty {
		t.Fatalf("err = %v, want ErrEmpty", err)
	}
}

func TestSummarizeSingle(t *testing.T) {
	s, err := Summarize([]float64{3})
	if err != nil {
		t.Fatal(err)
	}
	if s.Variance != 0 || s.Std != 0 || s.Median != 3 {
		t.Fatalf("summary = %+v", s)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ p, want float64 }{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.p); got != c.want {
			t.Errorf("Quantile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestQuantileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Quantile(xs, 0.5)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatalf("Quantile mutated its input: %v", xs)
	}
}

func TestMeanEmptyIsNaN(t *testing.T) {
	if !math.IsNaN(Mean(nil)) {
		t.Fatal("Mean(nil) should be NaN")
	}
}

func TestMinPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Min(nil) did not panic")
		}
	}()
	Min(nil)
}

func TestAutocorrelationOfPeriodicSeries(t *testing.T) {
	// Period-4 square-ish wave: ACF at lag 4 should be high, at lag
	// 2 strongly negative.
	xs := make([]float64, 400)
	for i := range xs {
		if i%4 < 2 {
			xs[i] = 1
		} else {
			xs[i] = -1
		}
	}
	acf := Autocorrelation(xs, 8)
	if acf[0] != 1 {
		t.Fatalf("acf[0] = %v, want 1", acf[0])
	}
	if acf[4] < 0.9 {
		t.Fatalf("acf[4] = %v, want ≈1", acf[4])
	}
	if acf[2] > -0.9 {
		t.Fatalf("acf[2] = %v, want ≈-1", acf[2])
	}
}

func TestAutocorrelationWhiteNoiseSmall(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	xs := make([]float64, 5000)
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	acf := Autocorrelation(xs, 5)
	for lag := 1; lag <= 5; lag++ {
		if math.Abs(acf[lag]) > 0.05 {
			t.Fatalf("white-noise acf[%d] = %v, want ≈0", lag, acf[lag])
		}
	}
}

func TestAutocorrelationConstantSeries(t *testing.T) {
	acf := Autocorrelation([]float64{2, 2, 2, 2}, 2)
	if acf[0] != 1 || acf[1] != 0 || acf[2] != 0 {
		t.Fatalf("constant-series acf = %v", acf)
	}
}

func TestKSDistanceIdentical(t *testing.T) {
	a := []float64{1, 2, 3, 4, 5}
	if d := KSDistance(a, a); d != 0 {
		t.Fatalf("KS(a,a) = %v, want 0", d)
	}
}

func TestKSDistanceDisjoint(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{10, 11, 12}
	if d := KSDistance(a, b); d != 1 {
		t.Fatalf("KS(disjoint) = %v, want 1", d)
	}
}

func TestKSDistanceSymmetric(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	a := make([]float64, 100)
	b := make([]float64, 150)
	for i := range a {
		a[i] = rng.NormFloat64()
	}
	for i := range b {
		b[i] = rng.NormFloat64() + 0.5
	}
	if d1, d2 := KSDistance(a, b), KSDistance(b, a); math.Abs(d1-d2) > 1e-12 {
		t.Fatalf("KS not symmetric: %v vs %v", d1, d2)
	}
}

// Property: quantiles are monotone in p and bounded by min/max.
func TestQuantileMonotoneProperty(t *testing.T) {
	check := func(seed int64, nRaw uint8) bool {
		n := int(nRaw)%50 + 1
		rng := rand.New(rand.NewSource(seed))
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64() * 10
		}
		prev := math.Inf(-1)
		for p := 0.0; p <= 1.0001; p += 0.1 {
			pp := math.Min(p, 1)
			q := Quantile(xs, pp)
			if q < prev-1e-12 {
				return false
			}
			prev = q
		}
		s, _ := Summarize(xs)
		return Quantile(xs, 0) == s.Min && Quantile(xs, 1) == s.Max
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
