package stats

import (
	"math"
	"math/rand"
	"testing"
)

func TestRegularizedGammaPKnownValues(t *testing.T) {
	// P(1, x) = 1 - e^-x.
	for _, x := range []float64{0.1, 0.5, 1, 2, 5, 10} {
		want := 1 - math.Exp(-x)
		if got := RegularizedGammaP(1, x); math.Abs(got-want) > 1e-10 {
			t.Errorf("P(1,%v) = %v, want %v", x, got, want)
		}
	}
	// P(a, 0) = 0; P at large x approaches 1.
	if got := RegularizedGammaP(3, 0); got != 0 {
		t.Errorf("P(3,0) = %v, want 0", got)
	}
	if got := RegularizedGammaP(3, 100); math.Abs(got-1) > 1e-10 {
		t.Errorf("P(3,100) = %v, want 1", got)
	}
	// P(0.5, x) = erf(sqrt(x)).
	for _, x := range []float64{0.25, 1, 4} {
		want := math.Erf(math.Sqrt(x))
		if got := RegularizedGammaP(0.5, x); math.Abs(got-want) > 1e-10 {
			t.Errorf("P(0.5,%v) = %v, want %v", x, got, want)
		}
	}
}

func TestRegularizedGammaPDomain(t *testing.T) {
	for _, fn := range []func(){
		func() { RegularizedGammaP(0, 1) },
		func() { RegularizedGammaP(1, -1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("domain error did not panic")
				}
			}()
			fn()
		}()
	}
}

func TestConstantGammaMoments(t *testing.T) {
	m := ConstantGamma{Shift: 140, Shape: 4, Scale: 5}
	if m.Mean() != 160 {
		t.Fatalf("mean = %v, want 160", m.Mean())
	}
	if m.Variance() != 100 {
		t.Fatalf("variance = %v, want 100", m.Variance())
	}
}

func TestConstantGammaPDFAndCDF(t *testing.T) {
	m := ConstantGamma{Shift: 10, Shape: 2, Scale: 3}
	if m.PDF(9) != 0 || m.CDF(9) != 0 {
		t.Fatal("density/CDF below shift must be 0")
	}
	// CDF should integrate the PDF: check with a Riemann sum.
	sum := 0.0
	dx := 0.01
	for x := 10.0; x < 60; x += dx {
		sum += m.PDF(x+dx/2) * dx
	}
	if math.Abs(sum-m.CDF(60)) > 1e-3 {
		t.Fatalf("∫pdf = %v, CDF = %v", sum, m.CDF(60))
	}
	// CDF monotone.
	prev := 0.0
	for x := 10.0; x < 80; x += 1 {
		c := m.CDF(x)
		if c < prev {
			t.Fatalf("CDF decreased at %v", x)
		}
		prev = c
	}
}

func TestGammaSampleMoments(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	unif := rng.Float64
	norm := rng.NormFloat64
	for _, tc := range []struct{ shape, scale float64 }{{0.5, 2}, {2, 3}, {9, 1}} {
		const n = 100000
		sum, sumSq := 0.0, 0.0
		for i := 0; i < n; i++ {
			v := GammaSample(tc.shape, tc.scale, unif, norm)
			if v < 0 {
				t.Fatalf("negative gamma sample %v", v)
			}
			sum += v
			sumSq += v * v
		}
		mean := sum / n
		variance := sumSq/n - mean*mean
		wantMean := tc.shape * tc.scale
		wantVar := tc.shape * tc.scale * tc.scale
		if math.Abs(mean-wantMean) > 0.05*wantMean {
			t.Errorf("shape %v: mean = %v, want %v", tc.shape, mean, wantMean)
		}
		if math.Abs(variance-wantVar) > 0.1*wantVar {
			t.Errorf("shape %v: var = %v, want %v", tc.shape, variance, wantVar)
		}
	}
}

func TestFitConstantGammaRecoversParameters(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	truth := ConstantGamma{Shift: 140, Shape: 3, Scale: 8}
	xs := make([]float64, 20000)
	for i := range xs {
		xs[i] = truth.Shift + GammaSample(truth.Shape, truth.Scale, rng.Float64, rng.NormFloat64)
	}
	fit, err := FitConstantGamma(xs)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Mean()-truth.Mean()) > 1 {
		t.Fatalf("fitted mean %v, want ≈%v", fit.Mean(), truth.Mean())
	}
	if math.Abs(fit.Variance()-truth.Variance()) > 0.15*truth.Variance() {
		t.Fatalf("fitted variance %v, want ≈%v", fit.Variance(), truth.Variance())
	}
	if math.Abs(fit.Shift-truth.Shift) > 5 {
		t.Fatalf("fitted shift %v, want ≈%v", fit.Shift, truth.Shift)
	}
}

func TestFitConstantGammaErrors(t *testing.T) {
	if _, err := FitConstantGamma([]float64{1}); err != ErrEmpty {
		t.Fatalf("short sample err = %v, want ErrEmpty", err)
	}
	if _, err := FitConstantGamma([]float64{2, 2, 2}); err != ErrDegenerate {
		t.Fatalf("degenerate sample err = %v, want ErrDegenerate", err)
	}
}

func TestFitConstantGammaGoodnessViaKS(t *testing.T) {
	// Samples from the fitted model should be close (KS) to the data.
	rng := rand.New(rand.NewSource(13))
	truth := ConstantGamma{Shift: 50, Shape: 2, Scale: 4}
	data := make([]float64, 5000)
	for i := range data {
		data[i] = truth.Shift + GammaSample(truth.Shape, truth.Scale, rng.Float64, rng.NormFloat64)
	}
	fit, err := FitConstantGamma(data)
	if err != nil {
		t.Fatal(err)
	}
	resampled := make([]float64, 5000)
	for i := range resampled {
		resampled[i] = fit.Shift + GammaSample(fit.Shape, fit.Scale, rng.Float64, rng.NormFloat64)
	}
	if d := KSDistance(data, resampled); d > 0.05 {
		t.Fatalf("KS distance between data and fitted model = %v, want < 0.05", d)
	}
}
