package stats

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestHistogramBinning(t *testing.T) {
	h := NewHistogram(0, 10, 1)
	h.AddAll([]float64{0, 0.5, 1, 9.99, -1, 10, 100})
	if h.Counts[0] != 2 {
		t.Fatalf("bin 0 = %d, want 2", h.Counts[0])
	}
	if h.Counts[1] != 1 {
		t.Fatalf("bin 1 = %d, want 1", h.Counts[1])
	}
	if h.Counts[9] != 1 {
		t.Fatalf("bin 9 = %d, want 1", h.Counts[9])
	}
	if h.Under != 1 || h.Over != 2 {
		t.Fatalf("under/over = %d/%d, want 1/2", h.Under, h.Over)
	}
	if h.Total() != 7 {
		t.Fatalf("total = %d, want 7", h.Total())
	}
}

func TestHistogramBinCenter(t *testing.T) {
	h := NewHistogram(10, 20, 2)
	if got := h.BinCenter(0); got != 11 {
		t.Fatalf("BinCenter(0) = %v, want 11", got)
	}
	if got := h.BinCenter(4); got != 19 {
		t.Fatalf("BinCenter(4) = %v, want 19", got)
	}
}

func TestHistogramFractionAndMode(t *testing.T) {
	h := NewHistogram(0, 4, 1)
	h.AddAll([]float64{0.5, 1.5, 1.6, 1.7, 3.5})
	if f := h.Fraction(1); f != 0.6 {
		t.Fatalf("Fraction(1) = %v, want 0.6", f)
	}
	if m := h.Mode(); m != 1.5 {
		t.Fatalf("Mode = %v, want 1.5", m)
	}
	if h.MaxCount() != 3 {
		t.Fatalf("MaxCount = %d, want 3", h.MaxCount())
	}
}

func TestHistogramPanicsOnBadArgs(t *testing.T) {
	for _, fn := range []func(){
		func() { NewHistogram(0, 10, 0) },
		func() { NewHistogram(5, 5, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("bad histogram args did not panic")
				}
			}()
			fn()
		}()
	}
}

func TestPeaksMultimodal(t *testing.T) {
	// Build a trimodal histogram like Figure 8: peaks near 4.5, 20,
	// and 35 (ms).
	h := NewHistogram(0, 60, 1)
	rng := rand.New(rand.NewSource(2))
	addCluster := func(center float64, n int) {
		for i := 0; i < n; i++ {
			h.Add(center + rng.NormFloat64())
		}
	}
	addCluster(4.5, 400)
	addCluster(20, 300)
	addCluster(35, 150)
	peaks := h.Peaks(20, 3)
	if len(peaks) != 3 {
		t.Fatalf("found %d peaks (%v), want 3", len(peaks), peaks)
	}
	// Highest peak first.
	if peaks[0].Count < peaks[1].Count || peaks[1].Count < peaks[2].Count {
		t.Fatalf("peaks not in descending order: %v", peaks)
	}
	near := func(got, want float64) bool { return got > want-2.5 && got < want+2.5 }
	found := map[string]bool{}
	for _, p := range peaks {
		switch {
		case near(p.Center, 4.5):
			found["a"] = true
		case near(p.Center, 20):
			found["b"] = true
		case near(p.Center, 35):
			found["c"] = true
		}
	}
	if len(found) != 3 {
		t.Fatalf("peak centers wrong: %v", peaks)
	}
}

func TestPeaksRespectsMinCount(t *testing.T) {
	h := NewHistogram(0, 10, 1)
	h.AddAll([]float64{1.5, 1.5, 1.5, 7.5})
	peaks := h.Peaks(2, 1)
	if len(peaks) != 1 || peaks[0].Bin != 1 {
		t.Fatalf("peaks = %v, want single peak at bin 1", peaks)
	}
}

func TestPeaksSeparation(t *testing.T) {
	h := NewHistogram(0, 10, 1)
	// Two adjacent tall bins: only one peak should survive with sep 2.
	h.Counts[3] = 10
	h.Counts[4] = 9
	h.total = 19
	peaks := h.Peaks(1, 2)
	if len(peaks) != 1 || peaks[0].Bin != 3 {
		t.Fatalf("peaks = %v, want single peak at bin 3", peaks)
	}
}

func TestECDF(t *testing.T) {
	e := NewECDF([]float64{1, 2, 2, 3})
	cases := []struct{ x, want float64 }{
		{0.5, 0}, {1, 0.25}, {2, 0.75}, {3, 1}, {10, 1},
	}
	for _, c := range cases {
		if got := e.At(c.x); got != c.want {
			t.Errorf("ECDF.At(%v) = %v, want %v", c.x, got, c.want)
		}
	}
	if e.N() != 4 {
		t.Fatalf("N = %d, want 4", e.N())
	}
	if q := e.Quantile(0.5); q != 2 {
		t.Fatalf("median = %v, want 2", q)
	}
}

// Property: histogram conserves counts (bins + under + over = total).
func TestHistogramConservationProperty(t *testing.T) {
	check := func(seed int64, nRaw uint8) bool {
		n := int(nRaw) + 1
		rng := rand.New(rand.NewSource(seed))
		h := NewHistogram(-5, 5, 0.5)
		for i := 0; i < n; i++ {
			h.Add(rng.NormFloat64() * 4)
		}
		sum := h.Under + h.Over
		for _, c := range h.Counts {
			sum += c
		}
		return sum == h.Total() && h.Total() == n
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: ECDF is monotone non-decreasing and hits 0 and 1 at the
// extremes.
func TestECDFMonotoneProperty(t *testing.T) {
	check := func(seed int64, nRaw uint8) bool {
		n := int(nRaw)%40 + 1
		rng := rand.New(rand.NewSource(seed))
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64()
		}
		e := NewECDF(xs)
		prev := -1.0
		for x := -4.0; x <= 4; x += 0.25 {
			v := e.At(x)
			if v < prev || v < 0 || v > 1 {
				return false
			}
			prev = v
		}
		return e.At(Min(xs)-1) == 0 && e.At(4) <= 1
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
