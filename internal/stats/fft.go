package stats

import (
	"fmt"
	"math"
	"math/cmplx"
)

// FFT computes the discrete Fourier transform of xs in place using the
// radix-2 Cooley–Tukey algorithm. The length of xs must be a power of
// two; FFT panics otherwise.
func FFT(xs []complex128) {
	n := len(xs)
	if n == 0 {
		return
	}
	if n&(n-1) != 0 {
		panic(fmt.Sprintf("stats: FFT length %d is not a power of two", n))
	}
	// Bit-reversal permutation.
	for i, j := 1, 0; i < n; i++ {
		bit := n >> 1
		for ; j&bit != 0; bit >>= 1 {
			j ^= bit
		}
		j ^= bit
		if i < j {
			xs[i], xs[j] = xs[j], xs[i]
		}
	}
	for length := 2; length <= n; length <<= 1 {
		ang := -2 * math.Pi / float64(length)
		wl := cmplx.Rect(1, ang)
		for i := 0; i < n; i += length {
			w := complex(1, 0)
			for j := 0; j < length/2; j++ {
				u := xs[i+j]
				v := xs[i+j+length/2] * w
				xs[i+j] = u + v
				xs[i+j+length/2] = u - v
				w *= wl
			}
		}
	}
}

// IFFT computes the inverse DFT of xs in place. Length must be a power
// of two.
func IFFT(xs []complex128) {
	for i := range xs {
		xs[i] = cmplx.Conj(xs[i])
	}
	FFT(xs)
	n := complex(float64(len(xs)), 0)
	for i := range xs {
		xs[i] = cmplx.Conj(xs[i]) / n
	}
}

// NextPow2 returns the smallest power of two ≥ n (and ≥ 1).
func NextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// Periodogram estimates the power spectral density of the real series
// xs: the series is mean-removed, zero-padded to a power of two, and
// |DFT|²/n is returned for the n/2+1 non-negative frequencies (in
// cycles per sample). This is the spectral-analysis tool used by the
// related work [19] to expose the diurnal congestion cycle; we use it
// to detect periodic components in simulated delay series.
func Periodogram(xs []float64) []float64 {
	if len(xs) == 0 {
		return nil
	}
	mean := Mean(xs)
	n := NextPow2(len(xs))
	buf := make([]complex128, n)
	for i, x := range xs {
		buf[i] = complex(x-mean, 0)
	}
	FFT(buf)
	out := make([]float64, n/2+1)
	for i := range out {
		m := cmplx.Abs(buf[i])
		out[i] = m * m / float64(n)
	}
	return out
}

// DominantFrequency returns the frequency (cycles per sample) with the
// largest periodogram power, excluding the zero frequency, together
// with that power. It returns (0, 0) for series shorter than 4
// samples.
func DominantFrequency(xs []float64) (freq, power float64) {
	if len(xs) < 4 {
		return 0, 0
	}
	pg := Periodogram(xs)
	n := (len(pg) - 1) * 2
	best := 1
	for i := 2; i < len(pg); i++ {
		if pg[i] > pg[best] {
			best = i
		}
	}
	return float64(best) / float64(n), pg[best]
}
