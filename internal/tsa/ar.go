// Package tsa implements the time-series machinery of Section 3: the
// paper contrasts its structural (queueing-model) interpretation with
// "standard procedures from time series analysis" — AR, MA and ARMA
// model fitting and prediction — and reports a parallel investigation
// of "whether ARMA models are adequate to model queueing delays in
// communication networks", with "consequences for the performance of
// predictive control mechanisms". This package carries that
// investigation out: autoregressive fitting by Levinson–Durbin
// recursion on the sample autocovariance (Yule–Walker), ARMA fitting
// by the Hannan–Rissanen two-stage regression, order selection by
// AIC, residual whiteness testing by the Ljung–Box statistic, and
// one-step-ahead predictors whose errors can be compared on probe
// traces.
package tsa

import (
	"errors"
	"fmt"
	"math"
)

// Autocovariance returns the biased sample autocovariance
// γ̂(0..maxLag) of xs (the biased 1/n form, which guarantees a
// positive-semidefinite sequence for Levinson–Durbin).
func Autocovariance(xs []float64, maxLag int) []float64 {
	n := len(xs)
	if maxLag >= n {
		maxLag = n - 1
	}
	if maxLag < 0 {
		return nil
	}
	mean := 0.0
	for _, x := range xs {
		mean += x
	}
	mean /= float64(n)
	out := make([]float64, maxLag+1)
	for lag := 0; lag <= maxLag; lag++ {
		sum := 0.0
		for i := 0; i+lag < n; i++ {
			sum += (xs[i] - mean) * (xs[i+lag] - mean)
		}
		out[lag] = sum / float64(n)
	}
	return out
}

// AR is a fitted autoregressive model
// x_t = Mean + Σ_i Phi[i]·(x_{t-1-i} − Mean) + ε_t, ε_t ~ (0, Sigma2).
type AR struct {
	// Phi holds the AR coefficients φ_1..φ_p.
	Phi []float64
	// Mean is the process mean removed before fitting.
	Mean float64
	// Sigma2 is the innovation variance.
	Sigma2 float64
}

// Order reports p.
func (m AR) Order() int { return len(m.Phi) }

// ErrShortSeries is returned when a series is too short to fit the
// requested model.
var ErrShortSeries = errors.New("tsa: series too short")

// FitAR fits an AR(p) model by the Yule–Walker equations, solved with
// the Levinson–Durbin recursion. It requires len(xs) > p+1.
func FitAR(xs []float64, p int) (AR, error) {
	if p < 0 {
		return AR{}, fmt.Errorf("tsa: negative order %d", p)
	}
	if len(xs) <= p+1 {
		return AR{}, ErrShortSeries
	}
	gamma := Autocovariance(xs, p)
	if gamma[0] == 0 {
		return AR{}, errors.New("tsa: zero-variance series")
	}
	mean := 0.0
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	phi, sigma2 := levinson(gamma, p)
	return AR{Phi: phi, Mean: mean, Sigma2: sigma2}, nil
}

// levinson solves the Yule–Walker system for orders 1..p and returns
// the order-p coefficients and innovation variance.
func levinson(gamma []float64, p int) (phi []float64, sigma2 float64) {
	sigma2 = gamma[0]
	phi = make([]float64, 0, p)
	for k := 1; k <= p; k++ {
		acc := gamma[k]
		for j := 0; j < k-1; j++ {
			acc -= phi[j] * gamma[k-1-j]
		}
		var refl float64
		if sigma2 != 0 {
			refl = acc / sigma2
		}
		next := make([]float64, k)
		copy(next, phi)
		next[k-1] = refl
		for j := 0; j < k-1; j++ {
			next[j] = phi[j] - refl*phi[k-2-j]
		}
		phi = next
		sigma2 *= 1 - refl*refl
		if sigma2 < 0 {
			sigma2 = 0
		}
	}
	return phi, sigma2
}

// Predict returns the one-step-ahead forecast of the value following
// history (ordered oldest first). With fewer than p observations the
// model falls back to the mean.
func (m AR) Predict(history []float64) float64 {
	p := len(m.Phi)
	if len(history) < p {
		return m.Mean
	}
	pred := m.Mean
	for i, phi := range m.Phi {
		pred += phi * (history[len(history)-1-i] - m.Mean)
	}
	return pred
}

// Residuals returns the one-step-ahead prediction errors of the model
// over xs (starting at index p).
func (m AR) Residuals(xs []float64) []float64 {
	p := len(m.Phi)
	if len(xs) <= p {
		return nil
	}
	out := make([]float64, 0, len(xs)-p)
	for t := p; t < len(xs); t++ {
		out = append(out, xs[t]-m.Predict(xs[:t]))
	}
	return out
}

// AIC computes Akaike's information criterion for the model fitted to
// a series of length n: n·ln(σ²) + 2p.
func (m AR) AIC(n int) float64 {
	s := m.Sigma2
	if s <= 0 {
		s = 1e-300
	}
	return float64(n)*math.Log(s) + 2*float64(len(m.Phi))
}

// SelectAR fits AR(0..maxP) and returns the order minimizing AIC.
func SelectAR(xs []float64, maxP int) (AR, error) {
	if maxP < 0 {
		return AR{}, fmt.Errorf("tsa: negative max order")
	}
	var best AR
	bestAIC := math.Inf(1)
	found := false
	for p := 0; p <= maxP; p++ {
		m, err := FitAR(xs, p)
		if err != nil {
			if errors.Is(err, ErrShortSeries) {
				break
			}
			return AR{}, err
		}
		if a := m.AIC(len(xs)); a < bestAIC {
			best, bestAIC, found = m, a, true
		}
	}
	if !found {
		return AR{}, ErrShortSeries
	}
	return best, nil
}

// LjungBox computes the Ljung–Box portmanteau statistic of xs at the
// given lag count. Values far above the χ²(lags) mean (≈ lags)
// indicate remaining autocorrelation; for white noise the statistic is
// close to the lag count.
func LjungBox(xs []float64, lags int) float64 {
	n := len(xs)
	if n == 0 || lags <= 0 {
		return 0
	}
	if lags >= n {
		lags = n - 1
	}
	gamma := Autocovariance(xs, lags)
	if gamma[0] == 0 {
		return 0
	}
	q := 0.0
	for k := 1; k <= lags; k++ {
		rho := gamma[k] / gamma[0]
		q += rho * rho / float64(n-k)
	}
	return float64(n) * (float64(n) + 2) * q
}
