package tsa

import (
	"errors"
	"fmt"
	"math"
)

// ARMA is a fitted ARMA(p, q) model
//
//	x_t = Mean + Σ φ_i (x_{t-i} − Mean) + Σ θ_j ε_{t-j} + ε_t.
type ARMA struct {
	Phi    []float64
	Theta  []float64
	Mean   float64
	Sigma2 float64
}

// FitARMA fits an ARMA(p, q) model with the Hannan–Rissanen two-stage
// procedure: a long autoregression estimates the innovations, then the
// ARMA coefficients come from least squares of x_t on lagged x and
// lagged estimated innovations. It requires a series several times
// longer than p+q.
func FitARMA(xs []float64, p, q int) (ARMA, error) {
	if p < 0 || q < 0 {
		return ARMA{}, fmt.Errorf("tsa: negative order (%d,%d)", p, q)
	}
	if q == 0 {
		ar, err := FitAR(xs, p)
		if err != nil {
			return ARMA{}, err
		}
		return ARMA{Phi: ar.Phi, Mean: ar.Mean, Sigma2: ar.Sigma2}, nil
	}
	long := p + q + 10
	if len(xs) < 4*(long+1) {
		return ARMA{}, ErrShortSeries
	}
	pre, err := FitAR(xs, long)
	if err != nil {
		return ARMA{}, err
	}
	eps := pre.Residuals(xs) // innovations estimates for t ≥ long
	mean := pre.Mean

	// Regress x_t − mean on (x_{t-1}−mean .. x_{t-p}−mean,
	// ε_{t-1} .. ε_{t-q}) for t where everything is observed.
	// Row t uses eps index t−long.
	start := long + q
	rows := len(xs) - start
	cols := p + q
	if rows <= cols {
		return ARMA{}, ErrShortSeries
	}
	x := make([][]float64, rows)
	y := make([]float64, rows)
	for r := 0; r < rows; r++ {
		t := start + r
		row := make([]float64, cols)
		for i := 0; i < p; i++ {
			row[i] = xs[t-1-i] - mean
		}
		for j := 0; j < q; j++ {
			row[p+j] = eps[t-1-j-long]
		}
		x[r] = row
		y[r] = xs[t] - mean
	}
	beta, err := leastSquares(x, y)
	if err != nil {
		return ARMA{}, err
	}
	m := ARMA{
		Phi:   beta[:p],
		Theta: beta[p:],
		Mean:  mean,
	}
	// Innovation variance from the regression residuals.
	ss := 0.0
	for r := 0; r < rows; r++ {
		pred := 0.0
		for cIdx, b := range beta {
			pred += b * x[r][cIdx]
		}
		d := y[r] - pred
		ss += d * d
	}
	m.Sigma2 = ss / float64(rows)
	return m, nil
}

// Predict returns the one-step forecast given the history and the
// model's own residual estimates for that history (computed
// internally).
func (m ARMA) Predict(history []float64) float64 {
	p := len(m.Phi)
	if len(history) < p {
		return m.Mean
	}
	// Reconstruct innovations by filtering the history.
	eps := make([]float64, len(history))
	for t := p; t < len(history); t++ {
		pred := m.Mean
		for i, phi := range m.Phi {
			pred += phi * (history[t-1-i] - m.Mean)
		}
		for j, th := range m.Theta {
			if t-1-j >= 0 {
				pred += th * eps[t-1-j]
			}
		}
		eps[t] = history[t] - pred
	}
	pred := m.Mean
	n := len(history)
	for i, phi := range m.Phi {
		pred += phi * (history[n-1-i] - m.Mean)
	}
	for j, th := range m.Theta {
		if n-1-j >= 0 {
			pred += th * eps[n-1-j]
		}
	}
	return pred
}

// AIC computes Akaike's criterion for the fitted model on a length-n
// series.
func (m ARMA) AIC(n int) float64 {
	s := m.Sigma2
	if s <= 0 {
		s = 1e-300
	}
	return float64(n)*math.Log(s) + 2*float64(len(m.Phi)+len(m.Theta))
}

// leastSquares solves min ‖Xβ − y‖₂ via the normal equations with
// Gaussian elimination and partial pivoting. X is row-major.
func leastSquares(x [][]float64, y []float64) ([]float64, error) {
	rows := len(x)
	if rows == 0 {
		return nil, errors.New("tsa: empty regression")
	}
	cols := len(x[0])
	// Form XᵀX and Xᵀy.
	a := make([][]float64, cols)
	b := make([]float64, cols)
	for i := 0; i < cols; i++ {
		a[i] = make([]float64, cols)
	}
	for r := 0; r < rows; r++ {
		for i := 0; i < cols; i++ {
			b[i] += x[r][i] * y[r]
			for j := i; j < cols; j++ {
				a[i][j] += x[r][i] * x[r][j]
			}
		}
	}
	for i := 0; i < cols; i++ {
		for j := 0; j < i; j++ {
			a[i][j] = a[j][i]
		}
	}
	// Tiny ridge for numerical safety on near-collinear designs.
	for i := 0; i < cols; i++ {
		a[i][i] += 1e-10 * (a[i][i] + 1)
	}
	return solveLinear(a, b)
}

func solveLinear(a [][]float64, b []float64) ([]float64, error) {
	n := len(a)
	for col := 0; col < n; col++ {
		// Partial pivot.
		pivot := col
		for r := col + 1; r < n; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[pivot][col]) {
				pivot = r
			}
		}
		if math.Abs(a[pivot][col]) < 1e-300 {
			return nil, errors.New("tsa: singular system")
		}
		a[col], a[pivot] = a[pivot], a[col]
		b[col], b[pivot] = b[pivot], b[col]
		inv := 1 / a[col][col]
		for r := col + 1; r < n; r++ {
			f := a[r][col] * inv
			if f == 0 {
				continue
			}
			for c := col; c < n; c++ {
				a[r][c] -= f * a[col][c]
			}
			b[r] -= f * b[col]
		}
	}
	out := make([]float64, n)
	for r := n - 1; r >= 0; r-- {
		acc := b[r]
		for c := r + 1; c < n; c++ {
			acc -= a[r][c] * out[c]
		}
		out[r] = acc / a[r][r]
	}
	return out, nil
}
