package tsa

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// genAR simulates an AR process with the given coefficients and
// innovation std.
func genAR(phi []float64, mean, std float64, n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	xs := make([]float64, n)
	for t := 0; t < n; t++ {
		v := mean + std*rng.NormFloat64()
		for i, p := range phi {
			if t-1-i >= 0 {
				v += p * (xs[t-1-i] - mean)
			}
		}
		xs[t] = v
	}
	return xs
}

func TestAutocovarianceLag0IsVariance(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	g := Autocovariance(xs, 2)
	// Biased variance: mean 3, Σd²/5 = 10/5 = 2.
	if math.Abs(g[0]-2) > 1e-12 {
		t.Fatalf("γ(0) = %v, want 2", g[0])
	}
}

func TestAutocovarianceEdge(t *testing.T) {
	if Autocovariance(nil, 3) != nil {
		t.Fatal("empty series should give nil")
	}
	g := Autocovariance([]float64{1, 2}, 10)
	if len(g) != 2 {
		t.Fatalf("lag clipping failed: %v", g)
	}
}

func TestFitARRecoverCoefficients(t *testing.T) {
	truth := []float64{0.6, -0.3}
	xs := genAR(truth, 10, 1, 100_000, 1)
	m, err := FitAR(xs, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range truth {
		if math.Abs(m.Phi[i]-want) > 0.03 {
			t.Fatalf("φ%d = %v, want %v", i+1, m.Phi[i], want)
		}
	}
	if math.Abs(m.Mean-10) > 0.2 {
		t.Fatalf("mean = %v, want 10", m.Mean)
	}
	if math.Abs(m.Sigma2-1) > 0.05 {
		t.Fatalf("σ² = %v, want 1", m.Sigma2)
	}
}

func TestFitARWhiteNoiseNearZero(t *testing.T) {
	xs := genAR(nil, 0, 1, 50_000, 2)
	m, err := FitAR(xs, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range m.Phi {
		if math.Abs(p) > 0.03 {
			t.Fatalf("white noise φ%d = %v, want ≈0", i+1, p)
		}
	}
}

func TestFitARErrors(t *testing.T) {
	if _, err := FitAR([]float64{1, 2}, 5); !errors.Is(err, ErrShortSeries) {
		t.Fatalf("short: %v", err)
	}
	if _, err := FitAR([]float64{1, 2, 3}, -1); err == nil {
		t.Fatal("negative order accepted")
	}
	if _, err := FitAR([]float64{2, 2, 2, 2, 2}, 1); err == nil {
		t.Fatal("constant series accepted")
	}
}

func TestARPredictReducesErrorOnARProcess(t *testing.T) {
	xs := genAR([]float64{0.85}, 100, 2, 20_000, 3)
	m, err := FitAR(xs[:10_000], 1)
	if err != nil {
		t.Fatal(err)
	}
	test := xs[10_000:]
	evAR := Evaluate(m, test, 2)
	evLast := Evaluate(LastValue{}, test, 2)
	evMean := Evaluate(MovingAverage{Window: 50}, test, 2)
	// For AR(0.85), the one-step MSE of the true model is σ²=4;
	// last-value gives 2σ²(1-φ)=... both baselines must lose.
	if evAR.MSE >= evLast.MSE {
		t.Fatalf("AR MSE %v not better than last-value %v", evAR.MSE, evLast.MSE)
	}
	if evAR.MSE >= evMean.MSE {
		t.Fatalf("AR MSE %v not better than moving average %v", evAR.MSE, evMean.MSE)
	}
	if evAR.MSE > 4.4 {
		t.Fatalf("AR MSE %v, want ≈σ²=4", evAR.MSE)
	}
}

func TestSelectARPicksTrueOrderRegion(t *testing.T) {
	xs := genAR([]float64{0.5, 0.3}, 0, 1, 30_000, 4)
	m, err := SelectAR(xs, 8)
	if err != nil {
		t.Fatal(err)
	}
	if m.Order() < 2 || m.Order() > 4 {
		t.Fatalf("selected order %d, want ≈2", m.Order())
	}
}

func TestSelectARShortSeries(t *testing.T) {
	if _, err := SelectAR([]float64{1}, 3); err == nil {
		t.Fatal("short series accepted")
	}
}

func TestLjungBoxWhiteVsCorrelated(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	white := make([]float64, 5000)
	for i := range white {
		white[i] = rng.NormFloat64()
	}
	corr := genAR([]float64{0.8}, 0, 1, 5000, 6)
	qWhite := LjungBox(white, 10)
	qCorr := LjungBox(corr, 10)
	// White noise: Q ≈ χ²(10) mean = 10. Correlated: enormous.
	if qWhite > 30 {
		t.Fatalf("white-noise Ljung–Box = %v, want ≈10", qWhite)
	}
	if qCorr < 1000 {
		t.Fatalf("correlated Ljung–Box = %v, want ≫ white", qCorr)
	}
}

func TestLjungBoxEdge(t *testing.T) {
	if LjungBox(nil, 5) != 0 || LjungBox([]float64{1, 1, 1}, 2) != 0 {
		t.Fatal("degenerate Ljung–Box should be 0")
	}
}

func TestARResidualsAreWhite(t *testing.T) {
	xs := genAR([]float64{0.7, -0.2}, 5, 1, 30_000, 7)
	m, err := FitAR(xs, 2)
	if err != nil {
		t.Fatal(err)
	}
	res := m.Residuals(xs)
	if q := LjungBox(res, 10); q > 40 {
		t.Fatalf("AR residuals not white: Q = %v", q)
	}
}

// Property: Levinson–Durbin on any stationary-looking autocovariance
// yields non-negative innovation variance, and fitting AR(p) to an
// AR(p) process is stable (|roots| considerations aside, coefficients
// are finite).
func TestFitARFiniteProperty(t *testing.T) {
	check := func(seed int64, phiRaw int8) bool {
		phi := float64(phiRaw) / 140 // |φ| ≤ 0.9
		xs := genAR([]float64{phi}, 0, 1, 2000, seed)
		m, err := FitAR(xs, 4)
		if err != nil {
			return false
		}
		if m.Sigma2 < 0 {
			return false
		}
		for _, c := range m.Phi {
			if math.IsNaN(c) || math.IsInf(c, 0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
