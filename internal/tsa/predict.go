package tsa

import (
	"math"
	"sort"
)

// Predictor forecasts the next value of a series from its history.
// This is the interface a predictive control mechanism (the paper's
// reference [16] and the §3 discussion) would consume.
type Predictor interface {
	// Predict forecasts the value following history (oldest first).
	Predict(history []float64) float64
	// Name identifies the predictor in evaluation reports.
	Name() string
}

// LastValue predicts the next value to equal the last observed one —
// the naive persistence forecaster every smarter predictor must beat.
type LastValue struct{}

// Predict implements Predictor.
func (LastValue) Predict(history []float64) float64 {
	if len(history) == 0 {
		return 0
	}
	return history[len(history)-1]
}

// Name implements Predictor.
func (LastValue) Name() string { return "last-value" }

// MovingAverage predicts the mean of the last Window observations.
type MovingAverage struct {
	// Window is the averaging span; values ≤ 0 mean 8.
	Window int
}

// Predict implements Predictor.
func (m MovingAverage) Predict(history []float64) float64 {
	w := m.Window
	if w <= 0 {
		w = 8
	}
	if len(history) == 0 {
		return 0
	}
	if w > len(history) {
		w = len(history)
	}
	sum := 0.0
	for _, v := range history[len(history)-w:] {
		sum += v
	}
	return sum / float64(w)
}

// Name implements Predictor.
func (m MovingAverage) Name() string { return "moving-average" }

// EWMA predicts with an exponentially weighted moving average with
// gain Alpha — the estimator inside TCP's RTT smoothing (the paper's
// references [12, 13]). Alpha outside (0,1] is treated as 1/8, the
// classical TCP gain.
type EWMA struct {
	Alpha float64
}

// Predict implements Predictor.
func (e EWMA) Predict(history []float64) float64 {
	if len(history) == 0 {
		return 0
	}
	a := e.Alpha
	if a <= 0 || a > 1 {
		a = 0.125
	}
	est := history[0]
	for _, v := range history[1:] {
		est += a * (v - est)
	}
	return est
}

// Name implements Predictor.
func (e EWMA) Name() string { return "ewma" }

// Name implements Predictor for AR models fitted by this package.
func (m AR) Name() string { return "ar" }

// Name implements Predictor for ARMA models.
func (m ARMA) Name() string { return "arma" }

// Evaluation reports a predictor's one-step-ahead accuracy on a
// series.
type Evaluation struct {
	Predictor string
	N         int
	MSE       float64
	MAE       float64
	// MedianAE is the median absolute error, robust to the RTT
	// spikes that dominate MSE.
	MedianAE float64
}

// Evaluate runs pred over xs, predicting each value from its prefix,
// skipping the first warmup observations. The paper's prediction
// problem: "predict a future value of a process given a record of past
// observations".
func Evaluate(pred Predictor, xs []float64, warmup int) Evaluation {
	if warmup < 1 {
		warmup = 1
	}
	ev := Evaluation{Predictor: pred.Name()}
	var absErrs []float64
	for t := warmup; t < len(xs); t++ {
		p := pred.Predict(xs[:t])
		err := xs[t] - p
		ev.N++
		ev.MSE += err * err
		ev.MAE += math.Abs(err)
		absErrs = append(absErrs, math.Abs(err))
	}
	if ev.N > 0 {
		ev.MSE /= float64(ev.N)
		ev.MAE /= float64(ev.N)
		sort.Float64s(absErrs)
		ev.MedianAE = absErrs[len(absErrs)/2]
	}
	return ev
}

// Compare evaluates several predictors on the same series and returns
// the results ordered as given.
func Compare(xs []float64, warmup int, preds ...Predictor) []Evaluation {
	out := make([]Evaluation, 0, len(preds))
	for _, p := range preds {
		out = append(out, Evaluate(p, xs, warmup))
	}
	return out
}
