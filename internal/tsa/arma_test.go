package tsa

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"time"

	"netprobe/internal/core"
)

// genARMA simulates an ARMA(p,q) process.
func genARMA(phi, theta []float64, mean, std float64, n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	xs := make([]float64, n)
	eps := make([]float64, n)
	for t := 0; t < n; t++ {
		eps[t] = std * rng.NormFloat64()
		v := mean + eps[t]
		for i, p := range phi {
			if t-1-i >= 0 {
				v += p * (xs[t-1-i] - mean)
			}
		}
		for j, th := range theta {
			if t-1-j >= 0 {
				v += th * eps[t-1-j]
			}
		}
		xs[t] = v
	}
	return xs
}

func TestFitARMARecoversParameters(t *testing.T) {
	phi := []float64{0.6}
	theta := []float64{0.4}
	xs := genARMA(phi, theta, 20, 1, 200_000, 1)
	m, err := FitARMA(xs, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Phi[0]-0.6) > 0.06 {
		t.Fatalf("φ = %v, want 0.6", m.Phi[0])
	}
	if math.Abs(m.Theta[0]-0.4) > 0.06 {
		t.Fatalf("θ = %v, want 0.4", m.Theta[0])
	}
	if math.Abs(m.Sigma2-1) > 0.1 {
		t.Fatalf("σ² = %v, want 1", m.Sigma2)
	}
}

func TestFitARMAPureMA(t *testing.T) {
	theta := []float64{0.7}
	xs := genARMA(nil, theta, 0, 1, 200_000, 2)
	m, err := FitARMA(xs, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Theta[0]-0.7) > 0.06 {
		t.Fatalf("θ = %v, want 0.7", m.Theta[0])
	}
}

func TestFitARMAZeroQDelegatesToAR(t *testing.T) {
	xs := genAR([]float64{0.5}, 0, 1, 20_000, 3)
	m, err := FitARMA(xs, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Theta) != 0 || math.Abs(m.Phi[0]-0.5) > 0.05 {
		t.Fatalf("model = %+v", m)
	}
}

func TestFitARMAErrors(t *testing.T) {
	if _, err := FitARMA([]float64{1, 2, 3}, 1, 1); !errors.Is(err, ErrShortSeries) {
		t.Fatalf("short: %v", err)
	}
	if _, err := FitARMA(nil, -1, 0); err == nil {
		t.Fatal("negative order accepted")
	}
}

func TestARMAPredictBeatsBaselinesOnARMAProcess(t *testing.T) {
	xs := genARMA([]float64{0.7}, []float64{0.5}, 50, 2, 40_000, 4)
	m, err := FitARMA(xs[:20_000], 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	test := xs[20_000:22_000]
	evARMA := Evaluate(m, test, 5)
	evLast := Evaluate(LastValue{}, test, 5)
	if evARMA.MSE >= evLast.MSE {
		t.Fatalf("ARMA MSE %v not better than last-value %v", evARMA.MSE, evLast.MSE)
	}
	if evARMA.MSE > 4.8 { // σ²=4 is the floor
		t.Fatalf("ARMA MSE %v, want ≈4", evARMA.MSE)
	}
}

func TestARMAAICPenalizesOrder(t *testing.T) {
	xs := genARMA([]float64{0.6}, []float64{0.4}, 0, 1, 50_000, 5)
	small, err := FitARMA(xs, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	big, err := FitARMA(xs, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if small.AIC(len(xs)) >= big.AIC(len(xs))+20 {
		t.Fatalf("AIC did not prefer the true order: %v vs %v",
			small.AIC(len(xs)), big.AIC(len(xs)))
	}
}

func TestLeastSquaresExact(t *testing.T) {
	// y = 2a − 3b, exactly determined.
	x := [][]float64{{1, 0}, {0, 1}, {1, 1}, {2, 1}}
	y := []float64{2, -3, -1, 1}
	beta, err := leastSquares(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(beta[0]-2) > 1e-6 || math.Abs(beta[1]+3) > 1e-6 {
		t.Fatalf("β = %v, want [2 -3]", beta)
	}
}

func TestSolveLinearSingular(t *testing.T) {
	a := [][]float64{{1, 1}, {1, 1}}
	b := []float64{1, 2}
	if _, err := solveLinear(a, b); err == nil {
		t.Fatal("singular system accepted")
	}
}

// The paper's §3 question, answered on our data: is an ARMA model
// adequate for probe queueing delays? Fit AR on a simulated trace and
// check the predictor beats persistence — and that the structural
// (queueing) signal leaves residual autocorrelation that a pure ARMA
// view misses at bursty timescales.
func TestARMAOnSimulatedQueueingDelays(t *testing.T) {
	tr, err := core.INRIAUMd(50*time.Millisecond, 4*time.Minute, 21)
	if err != nil {
		t.Fatal(err)
	}
	rtts := tr.RTTMillis()
	if len(rtts) < 1000 {
		t.Fatalf("only %d received probes", len(rtts))
	}
	half := len(rtts) / 2
	m, err := SelectAR(rtts[:half], 8)
	if err != nil {
		t.Fatal(err)
	}
	if m.Order() == 0 {
		t.Fatal("queueing delays fitted as white noise; they are strongly correlated")
	}
	evs := Compare(rtts[half:], 10, m, LastValue{}, EWMA{0.125}, MovingAverage{16})
	ar, last := evs[0], evs[1]
	if ar.MSE >= last.MSE {
		t.Fatalf("AR (MSE %v) should beat last-value (MSE %v) on queueing delays", ar.MSE, last.MSE)
	}
}
