package queue

import (
	"fmt"
	"math/rand"
)

// BatchDeterministic is the analytic model of Section 6: probe packets
// arrive deterministically every Delta seconds and require P/Mu
// seconds of service; the Internet stream contributes one batch of
// b_n bits per probe interval, arriving t_n seconds into the interval,
// with b_n drawn from a general batch-size distribution. The queue is
// FIFO with a finite waiting room expressed as a maximum waiting time
// MaxWait (a buffer of K packets of service time s corresponds to
// MaxWait ≈ K·s); a probe arriving to find waiting time above MaxWait
// is lost.
type BatchDeterministic struct {
	// Mu is the service rate in bits per second.
	Mu float64
	// Delta is the probe interval in seconds.
	Delta float64
	// P is the probe size in bits.
	P float64
	// MaxWait is the waiting-time capacity in seconds; probes
	// arriving when the unfinished work exceeds MaxWait are lost.
	// Zero or negative means an infinite buffer.
	MaxWait float64
	// Batch samples the Internet batch size in bits.
	Batch func(rng *rand.Rand) float64
	// ArrivalFrac samples the batch arrival offset t_n as a fraction
	// of Delta in [0,1). Nil means uniform.
	ArrivalFrac func(rng *rand.Rand) float64
}

// Result summarizes a model run.
type Result struct {
	// Waits is the waiting time w_n (seconds) of every probe that
	// was accepted; lost probes contribute nothing.
	Waits []float64
	// Lost marks, per probe, whether it was lost to buffer overflow.
	Lost []bool
	// LossProbability is the fraction of probes lost.
	LossProbability float64
	// MeanWait is the mean waiting time of accepted probes.
	MeanWait float64
}

// Run iterates the model recurrence for n probes with the given seed,
// returning per-probe waits and losses. It panics on invalid
// parameters.
func (m *BatchDeterministic) Run(n int, seed int64) Result {
	if m.Mu <= 0 || m.Delta <= 0 || m.P <= 0 {
		panic(fmt.Sprintf("queue: invalid batch model %+v", m))
	}
	if m.Batch == nil {
		panic("queue: batch model requires a batch-size distribution")
	}
	rng := rand.New(rand.NewSource(seed))
	svc := m.P / m.Mu
	res := Result{
		Waits: make([]float64, 0, n),
		Lost:  make([]bool, n),
	}
	// u is the unfinished work in the queue, in seconds. The buffer
	// capacity MaxWait gates admission: an arrival finding u above
	// MaxWait is refused outright (probe or batch); an arrival that
	// finds room enters in full, as packets do.
	u := 0.0
	capacity := m.MaxWait
	lost := 0
	sumW := 0.0
	for i := 0; i < n; i++ {
		// Probe i arrives now with waiting time u.
		if capacity > 0 && u > capacity {
			res.Lost[i] = true
			lost++
		} else {
			res.Waits = append(res.Waits, u)
			sumW += u
			u += svc
		}
		// Internet batch arrives t seconds into the interval. The
		// buffer admits whole batches: if there is room on arrival
		// (u ≤ capacity) the batch enters in full — possibly pushing
		// the unfinished work well past the probe-loss threshold,
		// which is what makes small-δ probe losses bursty — and
		// otherwise it is dropped entirely.
		t := m.arrivalFrac(rng) * m.Delta
		b := m.Batch(rng) / m.Mu
		u = drain(u, t)
		if capacity > 0 && u > capacity {
			b = 0
		}
		u += b
		u = drain(u, m.Delta-t)
	}
	res.LossProbability = float64(lost) / float64(n)
	if len(res.Waits) > 0 {
		res.MeanWait = sumW / float64(len(res.Waits))
	}
	return res
}

func (m *BatchDeterministic) arrivalFrac(rng *rand.Rand) float64 {
	if m.ArrivalFrac == nil {
		return rng.Float64()
	}
	f := m.ArrivalFrac(rng)
	if f < 0 {
		return 0
	}
	if f >= 1 {
		return 1 - 1e-12
	}
	return f
}

// drain reduces unfinished work w by elapsed time d, not below zero.
func drain(w, d float64) float64 {
	w -= d
	if w < 0 {
		return 0
	}
	return w
}

// StationaryWait solves the model numerically: the waiting time is
// discretized on a grid of step h over [0, maxW], the one-step
// transition kernel is built by averaging over nT batch arrival
// offsets and the discrete batch distribution batchPMF (value in bits
// → probability), and the stationary distribution is found by power
// iteration. It returns the stationary pmf over grid points
// w = 0, h, 2h, ....
//
// This is the "currently continuing" analysis of Section 6 carried to
// completion for a discrete batch-size law.
func (m *BatchDeterministic) StationaryWait(h, maxW float64, batchPMF map[float64]float64, nT, iters int) []float64 {
	if h <= 0 || maxW <= 0 {
		panic("queue: invalid grid")
	}
	if nT < 1 {
		nT = 1
	}
	n := int(maxW/h) + 1
	svc := m.P / m.Mu
	cur := make([]float64, n)
	next := make([]float64, n)
	cur[0] = 1
	clampIdx := func(w float64) int {
		i := int(w/h + 0.5)
		if i < 0 {
			return 0
		}
		if i >= n {
			return n - 1
		}
		return i
	}
	for it := 0; it < iters; it++ {
		for i := range next {
			next[i] = 0
		}
		for i, p := range cur {
			if p == 0 {
				continue
			}
			w := float64(i) * h
			for k := 0; k < nT; k++ {
				t := (float64(k) + 0.5) / float64(nT) * m.Delta
				for b, pb := range batchPMF {
					wn, _ := ProbeStep(w, svc, b/m.Mu, t, m.Delta)
					next[clampIdx(wn)] += p * pb / float64(nT)
				}
			}
		}
		cur, next = next, cur
	}
	// Normalize against accumulated rounding.
	sum := 0.0
	for _, p := range cur {
		sum += p
	}
	if sum > 0 {
		for i := range cur {
			cur[i] /= sum
		}
	}
	return cur
}
