// Package queue implements the queueing analysis of the paper:
// Lindley's recurrence (Figure 7), the exact two-step recurrence for
// the probe waiting times (Section 4, equations 4–5), the
// batch-deterministic single-server model sketched in Section 6, and
// classical reference formulas (M/D/1, M/M/1/K) used to validate the
// simulator.
//
// All quantities are in consistent units: times in seconds, sizes in
// bits, rates in bits per second.
package queue

// Lindley applies Lindley's recurrence once: given the waiting time w
// of a customer, its service time y, and the interarrival time x to
// the next customer, it returns the next customer's waiting time
// (w + y - x)^+ (Figure 7 of the paper).
func Lindley(w, y, x float64) float64 {
	next := w + y - x
	if next < 0 {
		return 0
	}
	return next
}

// Waits iterates Lindley's recurrence over a sequence of customers.
// service[i] is the service time of customer i and interarrival[i] is
// the gap between the arrivals of customers i and i+1. The returned
// slice has len(service) entries; entry 0 is w0 (the initial wait,
// zero). The two slices must have equal length.
func Waits(service, interarrival []float64) []float64 {
	if len(service) != len(interarrival) {
		panic("queue: service and interarrival lengths differ")
	}
	w := make([]float64, len(service))
	for i := 0; i+1 < len(service); i++ {
		w[i+1] = Lindley(w[i], service[i], interarrival[i])
	}
	return w
}

// ProbeStep performs the paper's two-application Lindley step
// (equations 4 and 5): given the waiting time w of probe n, the probe
// service time svc = P/μ, the Internet batch b (in service-time units,
// i.e. b/μ seconds) arriving t seconds after probe n (0 ≤ t ≤ delta),
// and the probe interval delta, it returns the waiting time of probe
// n+1 and the waiting time the batch itself experienced.
func ProbeStep(w, svc, batchSvc, t, delta float64) (wNext, wBatch float64) {
	wBatch = Lindley(w, svc, t)                // eq. (4): wb_n = (w_n + P/μ - t_n)^+
	wNext = Lindley(wBatch, batchSvc, delta-t) // eq. (5)
	return wNext, wBatch
}

// MD1MeanWait returns the mean waiting time (excluding service) in an
// M/D/1 queue with arrival rate lambda (packets/s) and deterministic
// service time svc (s), by the Pollaczek–Khinchine formula
// W = ρ·svc / (2(1-ρ)). It panics if the queue is unstable (ρ ≥ 1).
func MD1MeanWait(lambda, svc float64) float64 {
	rho := lambda * svc
	if rho >= 1 {
		panic("queue: M/D/1 unstable (rho >= 1)")
	}
	return rho * svc / (2 * (1 - rho))
}

// MM1KLossProbability returns the blocking probability of an M/M/1/K
// queue (K = total positions including the server) at offered load
// rho: P_K = (1-ρ)ρ^K / (1-ρ^{K+1}), with the ρ=1 limit 1/(K+1).
// K must be positive.
func MM1KLossProbability(rho float64, k int) float64 {
	if k <= 0 {
		panic("queue: MM1K requires K > 0")
	}
	if rho < 0 {
		panic("queue: negative load")
	}
	if rho == 1 {
		return 1 / float64(k+1)
	}
	num := (1 - rho) * pow(rho, k)
	den := 1 - pow(rho, k+1)
	return num / den
}

func pow(x float64, n int) float64 {
	p := 1.0
	for i := 0; i < n; i++ {
		p *= x
	}
	return p
}
