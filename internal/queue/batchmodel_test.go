package queue

import (
	"math"
	"math/rand"
	"testing"
)

// paperModel returns the model at the paper's parameters: 128 kb/s
// bottleneck, 576-bit (72-byte) probes.
func paperModel(delta float64, meanBatchBits float64) *BatchDeterministic {
	return &BatchDeterministic{
		Mu:      128_000,
		Delta:   delta,
		P:       576,
		MaxWait: 20 * 576 / 128_000.0 * 8, // generous buffer
		Batch: func(rng *rand.Rand) float64 {
			// Poisson-ish batch: geometric number of 4096-bit FTP
			// packets with the requested mean total size.
			mean := meanBatchBits / 4096
			if mean < 1e-9 {
				return 0
			}
			n := 0
			for rng.Float64() < mean/(1+mean) {
				n++
				if n > 1000 {
					break
				}
			}
			return float64(n) * 4096
		},
	}
}

func TestBatchModelNoTrafficMeansNoWait(t *testing.T) {
	m := &BatchDeterministic{
		Mu: 128_000, Delta: 0.05, P: 576,
		Batch: func(*rand.Rand) float64 { return 0 },
	}
	res := m.Run(1000, 1)
	if res.MeanWait != 0 || res.LossProbability != 0 {
		t.Fatalf("idle network gave wait %v loss %v", res.MeanWait, res.LossProbability)
	}
}

func TestBatchModelWaitGrowsWithLoad(t *testing.T) {
	low := paperModel(0.05, 2000).Run(20000, 2)
	high := paperModel(0.05, 5000).Run(20000, 2)
	if high.MeanWait <= low.MeanWait {
		t.Fatalf("mean wait did not grow with load: %v vs %v", low.MeanWait, high.MeanWait)
	}
}

func TestBatchModelLossGrowsAsDeltaShrinks(t *testing.T) {
	// Same Internet load per second; smaller δ means more probe
	// load, so more loss — the Table 3 trend. The model aggregates
	// each interval's Internet traffic into one batch, so it is
	// meaningful for small δ (the paper applies it at δ=20 ms);
	// compare within that regime.
	perSecondBits := 100_000.0
	lossAt := func(delta float64) float64 {
		m := paperModel(delta, perSecondBits*delta)
		m.MaxWait = 0.09
		return m.Run(60000, 3).LossProbability
	}
	l8, l50 := lossAt(0.008), lossAt(0.050)
	if l8 <= l50 {
		t.Fatalf("loss at δ=8ms (%v) should exceed loss at δ=50ms (%v)", l8, l50)
	}
}

func TestBatchModelRespectsMaxWait(t *testing.T) {
	m := paperModel(0.02, 6000)
	m.MaxWait = 0.05
	res := m.Run(50000, 4)
	for _, w := range res.Waits {
		// Accepted probes were below capacity at arrival.
		if w > m.MaxWait+1e-9 {
			t.Fatalf("accepted probe with wait %v above capacity %v", w, m.MaxWait)
		}
	}
	if res.LossProbability == 0 {
		t.Fatal("expected some loss at this load")
	}
}

func TestBatchModelDeterministicGivenSeed(t *testing.T) {
	a := paperModel(0.05, 3000).Run(5000, 42)
	b := paperModel(0.05, 3000).Run(5000, 42)
	if a.MeanWait != b.MeanWait || a.LossProbability != b.LossProbability {
		t.Fatal("model runs differ for identical seeds")
	}
}

func TestBatchModelInvalidParamsPanic(t *testing.T) {
	for _, m := range []*BatchDeterministic{
		{Mu: 0, Delta: 0.05, P: 576, Batch: func(*rand.Rand) float64 { return 0 }},
		{Mu: 1, Delta: 0, P: 576, Batch: func(*rand.Rand) float64 { return 0 }},
		{Mu: 1, Delta: 1, P: 576},
	} {
		m := m
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("invalid model %+v did not panic", m)
				}
			}()
			m.Run(10, 1)
		}()
	}
}

func TestStationaryWaitAgreesWithMonteCarlo(t *testing.T) {
	// Discrete batch law: 0 bits w.p. 0.5, one 4096-bit FTP packet
	// w.p. 0.35, two w.p. 0.15.
	pmf := map[float64]float64{0: 0.5, 4096: 0.35, 8192: 0.15}
	m := &BatchDeterministic{
		Mu: 128_000, Delta: 0.05, P: 576,
		Batch: func(rng *rand.Rand) float64 {
			u := rng.Float64()
			switch {
			case u < 0.5:
				return 0
			case u < 0.85:
				return 4096
			default:
				return 8192
			}
		},
	}
	// Monte Carlo mean wait.
	res := m.Run(400_000, 7)
	// Numeric stationary mean wait.
	h := 0.001
	pi := m.StationaryWait(h, 0.4, pmf, 8, 300)
	mean := 0.0
	for i, p := range pi {
		mean += float64(i) * h * p
	}
	if math.Abs(mean-res.MeanWait) > 0.004 {
		t.Fatalf("stationary mean %v vs Monte Carlo %v", mean, res.MeanWait)
	}
}

func TestStationaryWaitIsDistribution(t *testing.T) {
	pmf := map[float64]float64{0: 0.6, 4096: 0.4}
	m := &BatchDeterministic{Mu: 128_000, Delta: 0.05, P: 576,
		Batch: func(*rand.Rand) float64 { return 0 }}
	pi := m.StationaryWait(0.002, 0.2, pmf, 4, 100)
	sum := 0.0
	for _, p := range pi {
		if p < 0 {
			t.Fatalf("negative probability %v", p)
		}
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("stationary pmf sums to %v", sum)
	}
}
