package queue

import (
	"math/rand"
	"testing"
	"time"

	"netprobe/internal/core"
	"netprobe/internal/loss"
	"netprobe/internal/phase"
)

// batchTrace converts a model run into a probe trace: rtt_n = D + w_n
// + P/μ for accepted probes, rtt_n = 0 for lost ones. This is the
// bridge the paper's Section 6 describes between the analytic model
// and the measured series.
func batchTrace(m *BatchDeterministic, res Result, d float64, delta time.Duration) *core.Trace {
	t := &core.Trace{
		Name:          "batch-model",
		Delta:         delta,
		PayloadSize:   32,
		WireSize:      int(m.P / 8),
		BottleneckBps: int64(m.Mu),
	}
	svc := m.P / m.Mu
	wi := 0
	for i := range res.Lost {
		s := core.Sample{Seq: i, Sent: time.Duration(i) * delta}
		if res.Lost[i] {
			s.Lost = true
		} else {
			rtt := d + res.Waits[wi] + svc
			wi++
			s.RTT = time.Duration(rtt * float64(time.Second))
			s.Recv = s.Sent + s.RTT
		}
		t.Samples = append(t.Samples, s)
	}
	return t
}

// ftpBatch draws 0/1/2 FTP packets (4096 bits) with the given
// per-interval arrival probability.
func ftpBatch(p1, p2 float64) func(rng *rand.Rand) float64 {
	return func(rng *rand.Rand) float64 {
		u := rng.Float64()
		switch {
		case u < 1-p1-p2:
			return 0
		case u < 1-p2:
			return 4096
		default:
			return 8192
		}
	}
}

// TestModelBringsOutProbeCompression reproduces the paper's claim that
// the analytic model "bring[s] out the probe compression phenomenon":
// the phase plot of the model's own output shows the compression line,
// and reading it back recovers μ.
func TestModelBringsOutProbeCompression(t *testing.T) {
	delta := 20 * time.Millisecond
	m := &BatchDeterministic{
		Mu:    128_000,
		Delta: delta.Seconds(),
		P:     576,
		Batch: ftpBatch(0.30, 0.08),
	}
	res := m.Run(20_000, 17)
	tr := batchTrace(m, res, 0.140, delta)
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	est, err := phase.EstimateBottleneck(tr, 0)
	if err != nil {
		t.Fatalf("model output shows no compression line: %v", err)
	}
	if est.BottleneckBps < 120_000 || est.BottleneckBps > 137_000 {
		t.Fatalf("μ from model phase plot = %.0f, want ≈128000 (%v)", est.BottleneckBps, est)
	}
	if est.FixedDelayMs < 139 || est.FixedDelayMs > 146 {
		t.Fatalf("D from model phase plot = %.1f, want ≈140+P/μ", est.FixedDelayMs)
	}
}

// TestModelLossRandomExceptAtHighIntensity reproduces the paper's
// second Section 6 claim: "probe packets are lost randomly except when
// the Internet traffic intensity is very high".
func TestModelLossRandomExceptAtHighIntensity(t *testing.T) {
	run := func(delta time.Duration, p1, p2 float64) loss.Stats {
		m := &BatchDeterministic{
			Mu:      128_000,
			Delta:   delta.Seconds(),
			P:       576,
			MaxWait: 0.6, // ≈ 20 FTP packets of waiting room
			Batch:   ftpBatch(p1, p2),
		}
		res := m.Run(200_000, 23)
		return loss.Analyze(res.Lost)
	}
	// Moderate intensity at δ=50 ms (ρ ≈ 0.75): losses rare and
	// near-random.
	moderate := run(50*time.Millisecond, 0.45, 0.10)
	// Very high intensity at δ=8 ms (probes alone are 56 % of the
	// link; total ρ > 1): the buffer pins at capacity and, with δ
	// far below an FTP packet's 32 ms service time, consecutive
	// probes are lost in bursts — the paper's mechanism for the
	// Table 3 small-δ rows.
	extreme := run(8*time.Millisecond, 0.10, 0.02)

	if moderate.ULP > 0.08 {
		t.Fatalf("moderate-intensity loss %v unexpectedly high", moderate.ULP)
	}
	if moderate.Lost > 20 && !moderate.IsEssentiallyRandom(0.8) {
		t.Fatalf("moderate-intensity losses should be near-random: %+v", moderate)
	}
	if extreme.ULP < 2*moderate.ULP {
		t.Fatalf("extreme intensity did not raise loss: %v vs %v", extreme.ULP, moderate.ULP)
	}
	if extreme.PLG < 1.5 {
		t.Fatalf("extreme-intensity loss gap = %v, want bursty", extreme.PLG)
	}
	if extreme.CLP <= extreme.ULP {
		t.Fatalf("extreme intensity should have clp > ulp: %+v", extreme)
	}
}
