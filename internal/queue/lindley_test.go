package queue

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLindleyBasics(t *testing.T) {
	cases := []struct{ w, y, x, want float64 }{
		{0, 1, 2, 0},  // idle gap: wait stays zero
		{0, 2, 1, 1},  // service longer than gap: next waits 1
		{5, 1, 1, 5},  // balanced: wait persists
		{1, 1, 10, 0}, // long gap empties the queue
		{0, 0, 0, 0},  // degenerate
		{2, 3, 4, 1},  // mixed
	}
	for _, c := range cases {
		if got := Lindley(c.w, c.y, c.x); got != c.want {
			t.Errorf("Lindley(%v,%v,%v) = %v, want %v", c.w, c.y, c.x, got, c.want)
		}
	}
}

func TestWaitsDeterministicOverload(t *testing.T) {
	// Service 2, interarrival 1: wait grows by 1 per customer.
	n := 10
	svc := make([]float64, n)
	gap := make([]float64, n)
	for i := range svc {
		svc[i], gap[i] = 2, 1
	}
	w := Waits(svc, gap)
	for i, want := 0, 0.0; i < n; i, want = i+1, want+1 {
		if w[i] != want {
			t.Fatalf("w[%d] = %v, want %v", i, w[i], want)
		}
	}
}

func TestWaitsPanicsOnLengthMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch did not panic")
		}
	}()
	Waits([]float64{1}, []float64{1, 2})
}

func TestProbeStepMatchesPaperEquations(t *testing.T) {
	// With w_n large enough that the buffer never empties:
	// w_{n+1} = w_n + (P+b)/μ − δ (equation 6 rearranged).
	mu := 128000.0
	p := 576.0
	delta := 0.020
	b := 3904.0
	w := 0.050
	t1 := 0.007
	wNext, wBatch := ProbeStep(w, p/mu, b/mu, t1, delta)
	wantBatch := w + p/mu - t1
	if math.Abs(wBatch-wantBatch) > 1e-12 {
		t.Fatalf("wb = %v, want %v", wBatch, wantBatch)
	}
	want := w + (p+b)/mu - delta
	if math.Abs(wNext-want) > 1e-12 {
		t.Fatalf("w' = %v, want %v (eq. 6)", wNext, want)
	}
}

func TestProbeStepEmptiesWhenIdle(t *testing.T) {
	// No backlog, tiny batch, long interval: next wait is 0.
	wNext, _ := ProbeStep(0, 0.0045, 0.001, 0.1, 0.5)
	if wNext != 0 {
		t.Fatalf("w' = %v, want 0", wNext)
	}
}

func TestMD1MeanWait(t *testing.T) {
	// ρ=0.5, svc=1: W = 0.5/(2·0.5) = 0.5.
	if got := MD1MeanWait(0.5, 1); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("MD1MeanWait = %v, want 0.5", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("unstable M/D/1 did not panic")
		}
	}()
	MD1MeanWait(1, 1)
}

func TestMM1KLossProbability(t *testing.T) {
	// K=1 (server only): loss = ρ/(1+ρ).
	for _, rho := range []float64{0.1, 0.5, 0.9, 2} {
		want := rho / (1 + rho)
		if got := MM1KLossProbability(rho, 1); math.Abs(got-want) > 1e-12 {
			t.Errorf("MM1K(ρ=%v,K=1) = %v, want %v", rho, got, want)
		}
	}
	if got := MM1KLossProbability(1, 4); got != 0.2 {
		t.Fatalf("MM1K(ρ=1,K=4) = %v, want 0.2", got)
	}
	// Loss grows with load.
	if MM1KLossProbability(0.9, 10) <= MM1KLossProbability(0.5, 10) {
		t.Fatal("loss should increase with load")
	}
	// Loss shrinks with buffer.
	if MM1KLossProbability(0.8, 20) >= MM1KLossProbability(0.8, 5) {
		t.Fatal("loss should decrease with buffer size")
	}
}

func TestLindleyWaitsMatchMD1Formula(t *testing.T) {
	// Simulate M/D/1 via the recurrence and compare the long-run
	// mean wait to Pollaczek–Khinchine.
	rng := rand.New(rand.NewSource(21))
	const n = 2_000_000
	lambda, svcTime := 0.5, 1.0
	w, sum := 0.0, 0.0
	for i := 0; i < n; i++ {
		gap := rng.ExpFloat64() / lambda
		w = Lindley(w, svcTime, gap)
		sum += w
	}
	got := sum / n
	want := MD1MeanWait(lambda, svcTime)
	if math.Abs(got-want) > 0.03*want {
		t.Fatalf("simulated M/D/1 wait = %v, formula %v", got, want)
	}
}

// Property: Lindley output is non-negative and monotone in w and y,
// anti-monotone in x.
func TestLindleyMonotoneProperty(t *testing.T) {
	check := func(wRaw, yRaw, xRaw, dRaw uint16) bool {
		w := float64(wRaw) / 100
		y := float64(yRaw) / 100
		x := float64(xRaw) / 100
		d := float64(dRaw)/100 + 0.001
		base := Lindley(w, y, x)
		return base >= 0 &&
			Lindley(w+d, y, x) >= base &&
			Lindley(w, y+d, x) >= base &&
			Lindley(w, y, x+d) <= base
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: waits from Waits equal step-by-step Lindley application.
func TestWaitsConsistencyProperty(t *testing.T) {
	check := func(seed int64, nRaw uint8) bool {
		n := int(nRaw)%30 + 2
		rng := rand.New(rand.NewSource(seed))
		svc := make([]float64, n)
		gap := make([]float64, n)
		for i := range svc {
			svc[i] = rng.Float64() * 2
			gap[i] = rng.Float64() * 2
		}
		w := Waits(svc, gap)
		cur := 0.0
		for i := 0; i+1 < n; i++ {
			cur = Lindley(cur, svc[i], gap[i])
			if w[i+1] != cur {
				return false
			}
		}
		return w[0] == 0
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
