module netprobe

go 1.22
