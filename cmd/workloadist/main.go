// Command workloadist renders the Figure 8/9 analysis for a saved
// trace: the histogram of inter-return times w_{n+1} − w_n + δ, the
// detected peaks, and the Internet workload sizes they imply through
// equation 6 — including the bulk (FTP) packet size.
//
// Usage:
//
//	workloadist [-mu 128000] [-bin 1.5] trace.csv
//
// With -mu 0 the bottleneck bandwidth recorded in the trace (if any)
// or estimated from the phase plot is used.
package main

import (
	"flag"
	"fmt"
	"log"

	"netprobe/internal/obs"
	"netprobe/internal/phase"
	"netprobe/internal/plot"
	"netprobe/internal/trace"
	"netprobe/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("workloadist: ")
	var (
		mu  = flag.Float64("mu", 0, "bottleneck bandwidth in b/s (0 = from trace or phase plot)")
		bin = flag.Float64("bin", 1.5, "histogram bin width in ms")
	)
	checkVersion := obs.VersionFlag(flag.CommandLine)
	flag.Parse()
	checkVersion()
	if flag.NArg() != 1 {
		log.Fatal("usage: workloadist [flags] trace.csv")
	}
	tr, err := trace.Load(flag.Arg(0))
	if err != nil {
		log.Fatal(err)
	}
	m := *mu
	switch {
	case m > 0:
	case tr.BottleneckBps > 0:
		m = float64(tr.BottleneckBps)
		fmt.Printf("using bottleneck %.0f b/s recorded in the trace\n", m)
	default:
		est, err := phase.EstimateBottleneck(tr, 0)
		if err != nil {
			log.Fatalf("no bandwidth given, none in trace, and phase estimate failed: %v", err)
		}
		m = est.BottleneckBps
		fmt.Printf("using phase-plot bandwidth estimate %.0f b/s\n", m)
	}

	fmt.Printf("distribution of w_n+1 − w_n + δ for %s:\n", tr.Name)
	fmt.Print(plot.Histogram(workload.Distribution(tr, *bin), 48))

	a, err := workload.Analyze(tr, m, *bin)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%s\n", a)
	if bulk, err := a.InferredBulkBytes(); err == nil {
		fmt.Printf("inferred bulk packet size: %.0f bytes (eq. 6: b = μ·peak − P)\n", bulk)
	}
	fmt.Printf("compression fraction (mass near P/μ): %.1f%%\n",
		100*workload.CompressionFraction(tr, m, 3))
}
