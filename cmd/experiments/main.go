// Command experiments regenerates every table and figure of the paper
// from the simulated INRIA–UMd and UMd–Pittsburgh paths, printing the
// paper's reported values next to the measured ones. Run with -quick
// for shorter simulations during development; the default runs the
// paper's full 10-minute experiments.
//
// All simulations are independent jobs executed by internal/runner's
// worker pool, so the full reproduction uses every core. Per-job
// seeds are derived from -seed, making the output identical at any
// -workers value.
//
// Every run emits live per-job progress lines through the shared
// structured logger (-log/-logfmt) and writes a JSON run manifest
// (flags, per-job seeds and wall times, loss stats, and the metrics
// registry snapshot) so performance and correctness trajectories are
// diffable across commits; -manifest "" disables it.
//
// Usage:
//
//	experiments [-quick] [-seed 42] [-plots] [-workers N]
//	            [-log info] [-logfmt text|json] [-debug-addr :6060]
//	            [-manifest experiments-manifest.json]
//	            [-trace-dir traces/] [-trace-max-bytes N]
//	            [-online] [-online-window N] [-relay host:port]
//	            [-job-timeout 0] [-retries 0] [-version]
//
// -trace-dir writes one probe-lifecycle event file (otrace JSONL) per
// job, referenced from the manifest; the files are byte-identical at
// any -workers value. -trace-max-bytes rotates each job's file into
// gzip segments once it would exceed N uncompressed bytes; the
// manifest then lists every segment.
//
// -online streams every job's events through the in-process analysis
// engine (internal/online): while the reproduction is running, GET
// /online on the -debug-addr server reports each job's running loss
// statistics, live bottleneck-μ estimate, and workload histogram, and
// online.* gauges appear on /metrics; -online-window caps the
// analyzers to the trailing N probes per job. -relay streams the same
// job-tagged events to a netdyn-relay collector over TCP, which then
// computes the identical analysis remotely.
//
// -job-timeout bounds each simulation's wall-clock time and -retries
// redispatches failed or timed-out jobs (same derived seed, so a
// successful retry is byte-identical to a first-attempt success; the
// manifest records the attempt count).
//
// SIGINT or SIGTERM stops the sweep gracefully: running jobs finish,
// undispatched ones are recorded as cancelled, the manifest is still
// written (covering the partial sweep), and the figures are skipped.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"os"
	"os/signal"
	"strconv"
	"syscall"
	"time"

	"netprobe/internal/capacity"
	"netprobe/internal/core"
	"netprobe/internal/dynamics"
	"netprobe/internal/fec"
	"netprobe/internal/loss"
	"netprobe/internal/obs"
	"netprobe/internal/online"
	"netprobe/internal/phase"
	"netprobe/internal/pipestat"
	"netprobe/internal/plot"
	"netprobe/internal/queue"
	"netprobe/internal/route"
	"netprobe/internal/runner"
	"netprobe/internal/sim"
	"netprobe/internal/source"
	"netprobe/internal/tcp"
	"netprobe/internal/tsa"
	"netprobe/internal/tshist"
	"netprobe/internal/workload"
)

var (
	quick    = flag.Bool("quick", false, "run 2-minute experiments instead of 10-minute ones")
	seed     = flag.Int64("seed", 42, "root seed; per-experiment seeds are derived from it")
	plots    = flag.Bool("plots", false, "render ASCII figures, not just numbers")
	workers  = flag.Int("workers", 0, "parallel simulation workers (0 = GOMAXPROCS)")
	manifest = flag.String("manifest", "experiments-manifest.json",
		"run-manifest output path; empty disables the manifest")
	traceDir = flag.String("trace-dir", "",
		"directory for per-job probe-lifecycle event files (otrace JSONL); empty disables tracing")
	traceMax = flag.Int64("trace-max-bytes", 0,
		"rotate each job's trace into gzip segments after this many uncompressed bytes (0 = no rotation)")
	traceWire = flag.Bool("trace-wire", false,
		"write trace files in the binary wire form (job-NNN.otr, smaller and faster to re-read; supersedes -trace-max-bytes)")
	onlineOn = flag.Bool("online", false,
		"stream job events through the online analysis engine (serves /online on -debug-addr)")
	onlineWin = flag.Int("online-window", 0,
		"cap the online analyzers to the trailing N probes per job (0 = all-time statistics)")
	relay = flag.String("relay", "",
		"stream job events to a netdyn-relay collector at this address; empty disables")
	jobTimeout = flag.Duration("job-timeout", 0,
		"per-job wall-clock limit; timed-out jobs fail (and are retried under -retries); 0 = no limit")
	retries = flag.Int("retries", 0,
		"additional attempts for failed or timed-out jobs (same derived seed; manifests record the attempt count)")
	obsFlags    = obs.RegisterFlags(flag.CommandLine)
	tshistFlags = tshist.RegisterFlags(flag.CommandLine)
)

// The online engine, when -online is set; runAll tees every job's
// events into its bus and main drains it after the sweep.
var (
	onlineBus *online.Bus
	onlineEng *online.Engine
)

// Job labels: every simulation the reproduction needs, built once and
// run concurrently. Figures, tables, and the extension analyses all
// read from this one batch, so e.g. the δ=50 ms trace is simulated
// once and shared by Figure 1, Figure 2, Table 3, and the §3
// prediction study.
const (
	jobRouteChange = "inria δ=50ms +route-change"
	jobAnomaly     = "inria δ=500ms +gateway-bursts"
	jobPacketPair  = "inria packet-pairs"
)

func deltaLabel(preset string, d time.Duration) string {
	return fmt.Sprintf("%s δ=%v", preset, d)
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("experiments: ")
	flag.Parse()
	// The online engine registers its /online debug handler, so it must
	// exist before Setup starts the -debug-addr server. The pipeline
	// monitor rides in the analyzer set, closing the online chain's
	// conservation ledger at the applied stage (internal/pipestat).
	if *onlineOn {
		mon := pipestat.NewMonitor(pipestat.Default.Chain("online"))
		onlineBus = online.NewBus()
		onlineEng = online.NewEngine(onlineBus, 0,
			append(online.DefaultAnalyzers(obs.Default, online.WithWindow(*onlineWin)), mon)...)
		online.RegisterDebug(onlineEng)
		obs.StatusSection("online", func() any {
			length, capacity := onlineEng.Queue()
			return map[string]any{"queue_len": length, "queue_cap": capacity, "dropped": onlineEng.Dropped()}
		})
	}
	pipestat.Default.Register()
	if _, err := tshistFlags.Setup(obs.Default, obsFlags.DebugAddr != ""); err != nil {
		log.Fatal(err)
	}
	if _, err := obsFlags.Setup(obs.Default); err != nil {
		log.Fatal(err)
	}

	dur := 10 * time.Minute
	longDur := 10 * time.Minute
	if *quick {
		dur, longDur = 2*time.Minute, 5*time.Minute
	}

	// A signal stops dispatching new jobs; running ones finish, the
	// manifest still captures the partial sweep, and the figures —
	// which would read nil traces — are skipped.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	traces, results, summary := runAll(ctx, dur, longDur)
	fmt.Printf("simulated %s\n", summary)
	if *manifest != "" {
		writeManifest(*manifest, results, summary)
	}
	if ctx.Err() != nil {
		fmt.Printf("interrupted: %d of %d jobs cancelled; figures skipped, partial manifest written\n",
			summary.Cancelled, summary.Jobs)
		return
	}
	if err := runner.FirstErr(results); err != nil {
		log.Fatal(err)
	}

	inria := func(d time.Duration) *core.Trace { return traces[deltaLabel("inria", d)] }
	tr50 := inria(50 * time.Millisecond)
	tr20 := inria(20 * time.Millisecond)
	tr100 := inria(100 * time.Millisecond)

	tables12()
	figure1(tr50)
	figure2(tr50)
	figure4(inria(500 * time.Millisecond))
	figure5(traces[deltaLabel("pitt", 8*time.Millisecond)])
	figure6(traces[deltaLabel("pitt", 50*time.Millisecond)])
	figures89(tr20, tr100)
	table3(traces)
	section5(tr100)
	section6(tr20)
	extensions(traces, dur)
}

// runAll builds every simulation job of the reproduction and executes
// the batch on the worker pool, returning traces keyed by job label
// plus the raw results and sweep summary for the run manifest. Job
// start/finish events stream to the structured logger as they happen.
func runAll(ctx context.Context, dur, longDur time.Duration) (map[string]*core.Trace, []runner.Result, runner.Summary) {
	inria := core.INRIAPreset()
	pitt := core.PittPreset()

	var jobs []runner.Job
	// The δ-sweep behind Figures 1–9 and Table 3. Runs at δ ≥ 200 ms
	// need the longer duration for enough samples.
	for _, d := range core.PaperDeltas {
		dd := dur
		if d >= 200*time.Millisecond {
			dd = longDur
		}
		jobs = append(jobs, runner.Job{
			Label:  deltaLabel("inria", d),
			Config: inria.Config(d, dd, 0),
		})
	}
	for _, d := range []time.Duration{8 * time.Millisecond, 50 * time.Millisecond} {
		jobs = append(jobs, runner.Job{
			Label:  deltaLabel("pitt", d),
			Config: pitt.Config(d, dur, 0),
		})
	}

	// The extension experiments: [21] route change, [22] periodic
	// gateway bursts, and the packet-pair capacity schedule.
	rc := inria.Config(50*time.Millisecond, dur, 0)
	rc.RouteChange = &core.RouteChange{At: dur / 2, Hop: 3, Shift: 15 * time.Millisecond}
	jobs = append(jobs, runner.Job{Label: jobRouteChange, Config: rc})

	an := inria.Config(500*time.Millisecond, 15*time.Minute, 0)
	an.Path.Hops[3].Buffer = 80
	an.Anomaly = &core.Anomaly{Period: 90 * time.Second, Burst: 80, Size: 512}
	jobs = append(jobs, runner.Job{Label: jobAnomaly, Config: an})

	pp := inria.Config(200*time.Millisecond, 0, 0)
	pp.ClockRes = 0
	pp.SendTimes = capacity.PairSchedule(1000, 200*time.Millisecond, time.Millisecond)
	jobs = append(jobs, runner.Job{Label: jobPacketPair, Config: pp})

	for i := range jobs {
		jobs[i].Timeout = *jobTimeout
		jobs[i].Retries = *retries
	}

	opts := []runner.Option{
		runner.Workers(*workers),
		runner.Metrics(obs.Default),
		runner.Progress(progressLine(len(jobs))),
	}
	if *traceDir != "" {
		opts = append(opts, runner.Traces(*traceDir))
		if *traceMax > 0 {
			opts = append(opts, runner.TraceMaxBytes(*traceMax))
		}
		if *traceWire {
			opts = append(opts, runner.WireTraces())
		}
	}
	if onlineBus != nil {
		// Produce stamps and counts each tapped event into the online
		// chain's ledger; the engine-side monitor closes the books.
		chain := pipestat.Default.Chain("online")
		chain.Dropped("bus", onlineBus.Dropped)
		opts = append(opts, runner.Sink(chain.Produce(onlineBus)))
	}
	var sender *source.Sender
	if *relay != "" {
		var err error
		if sender, err = source.Dial(*relay); err != nil {
			log.Fatal(err)
		}
		// The wire branch keeps its own books: every tapped event ends
		// up sent or dropped (sticky stream errors), never lost silently.
		chain := pipestat.Default.Chain("wire")
		chain.Applied("sender", sender.Sent)
		chain.Dropped("sender", sender.Dropped)
		sender.StartHeartbeats(2 * time.Second)
		opts = append(opts, runner.Sink(chain.Produce(chain.Stage(pipestat.StageWireSent, sender))))
		slog.Info("relaying events", "to", *relay)
	}
	results, summary := runner.RunAll(ctx, *seed, jobs, opts...)
	if sender != nil {
		if err := sender.Close(); err != nil {
			slog.Warn("relay stream incomplete", "err", err)
		}
	}
	if onlineEng != nil {
		onlineBus.Close()
		onlineEng.Wait()
		if d := onlineEng.Dropped(); d > 0 {
			slog.Warn("online analysis sampled, not exact", "dropped", d)
		}
	}
	traces := make(map[string]*core.Trace, len(results))
	for _, r := range results {
		if r.Trace != nil {
			traces[r.Label] = r.Trace
		}
	}
	return traces, results, summary
}

// progressLine returns a Progress consumer that logs one line per
// job start and finish — the live view of the sweep.
func progressLine(total int) func(runner.Event) {
	done := 0
	return func(ev runner.Event) {
		switch ev.Kind {
		case runner.JobStart:
			slog.Info("job start",
				"job", fmt.Sprintf("%d/%d", ev.Index+1, total),
				"label", ev.Label, "seed", ev.Seed, "worker", ev.Worker)
		case runner.JobFinish:
			done++
			if ev.Err != nil {
				slog.Error("job failed",
					"done", fmt.Sprintf("%d/%d", done, total),
					"label", ev.Label, "err", ev.Err)
				return
			}
			slog.Info("job done",
				"done", fmt.Sprintf("%d/%d", done, total),
				"label", ev.Label, "seed", ev.Seed,
				"wall", ev.Wall.Round(time.Millisecond),
				"ulp", fmt.Sprintf("%.3f", ev.Stats.ULP),
				"lost", ev.Stats.Lost, "sent", ev.Stats.N)
		}
	}
}

// writeManifest records the run as a diffable JSON artifact: flags,
// presets, per-job seeds/wall/loss, and the metrics snapshot.
func writeManifest(path string, results []runner.Result, summary runner.Summary) {
	m := runner.NewManifest("experiments", *seed, results, summary)
	m.Flags = map[string]string{
		"quick":           strconv.FormatBool(*quick),
		"plots":           strconv.FormatBool(*plots),
		"workers":         strconv.Itoa(*workers),
		"trace_dir":       *traceDir,
		"trace_max_bytes": strconv.FormatInt(*traceMax, 10),
		"online":          strconv.FormatBool(*onlineOn),
		"online_window":   strconv.Itoa(*onlineWin),
		"relay":           *relay,
		"job_timeout":     jobTimeout.String(),
		"retries":         strconv.Itoa(*retries),
	}
	m.Presets = []string{"inria", "pitt"}
	snap := obs.Default.Snapshot()
	m.Metrics = &snap
	if err := m.Write(path); err != nil {
		log.Fatal(err)
	}
	slog.Info("run manifest written", "path", path,
		"jobs", len(m.Jobs), "metrics", len(snap.Counters)+len(snap.Gauges)+len(snap.Histograms))
}

// extensions regenerates the companion results the paper points at:
// the §3 prediction study, the [21]/[22] diagnoses, the [29] ACK
// compression, and packet-pair capacity estimation.
func extensions(traces map[string]*core.Trace, dur time.Duration) {
	header("Extensions — the paper's companion results")

	// §3: AR prediction of queueing delays, on the shared δ=50 ms run.
	tr := traces[deltaLabel("inria", 50*time.Millisecond)]
	rtts := tr.RTTMillis()
	half := len(rtts) / 2
	if m, err := tsa.SelectAR(rtts[:half], 8); err == nil {
		evs := tsa.Compare(rtts[half:], 10, m, tsa.LastValue{}, tsa.EWMA{})
		fmt.Printf("§3 prediction: AR(%d) one-step MSE %.0f vs last-value %.0f vs EWMA %.0f (ms²)\n",
			m.Order(), evs[0].MSE, evs[1].MSE, evs[2].MSE)
	}

	// [21]: route change.
	trRC := traces[jobRouteChange]
	if shift, err := dynamics.DetectLevelShift(trRC, 0, 0); err == nil {
		fmt.Printf("[21] route change: injected +30 ms RTT at %v; detected %+.1f ms at t ≈ %v (%d reorderings)\n",
			dur/2, shift.ShiftMs(), shift.At.Round(time.Second), trRC.Reorderings())
	}

	// [22]: the every-90-seconds gateway burst.
	if per, err := dynamics.DetectPeriodicity(traces[jobAnomaly], 0); err == nil {
		fmt.Printf("[22] gateway bursts: injected every 90 s; detected every %v (autocorrelation %.2f)\n",
			per.Period.Round(time.Second), per.Correlation)
	}

	// [29]: ACK compression (the phenomenon probe compression is
	// named after). The closed-loop TCP sims use the tcp package
	// directly; they are not SimConfig jobs.
	dataSvc := time.Duration(512 * 8 * int64(time.Second) / 128_000)
	ackFrac := func(twoWay bool) float64 {
		sched := sim.NewScheduler()
		var f sim.Factory
		d := tcp.NewDumbbell(sched, 128_000, 20, 35*time.Millisecond)
		a := tcp.NewConn(sched, &f, "A", tcp.Options{Total: 1500})
		d.AttachForward(a)
		a.Start(0)
		if twoWay {
			b := tcp.NewConn(sched, &f, "B", tcp.Options{Total: 1500})
			d.AttachReverse(b)
			b.Start(0)
		}
		sched.Run(30 * time.Minute)
		return tcp.CompressionFraction(a.AckArrivalTimes(), dataSvc)
	}
	fmt.Printf("[29] ACK compression: %.1f%% of ACK gaps compressed one-way vs %.1f%% under two-way traffic\n",
		100*ackFrac(false), 100*ackFrac(true))

	// Packet-pair capacity estimation vs the phase-plot method.
	if est, err := capacity.FromPairs(traces[jobPacketPair], 0); err == nil {
		fmt.Printf("packet-pair: μ ≈ %.0f b/s from %d pairs (link: 128000)\n",
			est.BottleneckBps, est.Pairs)
	}
}

func header(title string) {
	fmt.Printf("\n## %s\n\n", title)
}

func tables12() {
	header("Tables 1 & 2 — measured routes")
	p1 := route.INRIAToUMd()
	fmt.Printf("Table 1, %s (paper: 10 hops, 128 kb/s transatlantic bottleneck at hop 4):\n%s", p1, p1.Traceroute())
	p2 := route.UMdToPitt()
	fmt.Printf("Table 2, %s (paper: 14 hops, bottleneck \"much higher than 128 kb/s\"):\n%s", p2, p2.Traceroute())
}

func figure1(tr *core.Trace) {
	header("Figure 1 — time series of rtt_n, δ=50 ms, n ∈ [0, 800]")
	first := tr.Slice(0, 800)
	s := loss.AnalyzeTrace(first)
	min, _ := first.MinRTT()
	fmt.Printf("paper:    many losses (9%% over the run), RTTs from ≈140 ms up past 400 ms\n")
	fmt.Printf("measured: loss %.1f%%, min RTT %v, max RTT %v\n",
		100*s.ULP, min, maxRTT(first))
	if *plots {
		var ys []float64
		for _, rtt := range first.RTTSeries() {
			ys = append(ys, float64(rtt)/1e6)
		}
		fmt.Print(plot.TimeSeries(ys, 100, 24))
	}
}

func figure2(tr *core.Trace) {
	header("Figure 2 — phase plot, δ=50 ms (INRIA–UMd)")
	first := tr.Slice(0, 800)
	est, err := phase.EstimateBottleneck(first, 0)
	fmt.Printf("paper:    D ≈ 140 ms; compression-line x-intercept ≈ 48 ms ⇒ μ ≈ 130 kb/s (link: 128 kb/s)\n")
	if err != nil {
		fmt.Printf("measured: %v (D≈%.1f ms)\n", err, est.FixedDelayMs)
	} else {
		fmt.Printf("measured: D ≈ %.1f ms; intercept ≈ %.1f ms ⇒ μ ≈ %.0f kb/s\n",
			est.FixedDelayMs, est.InterceptMs, est.BottleneckBps/1000)
	}
	phaseFigure(first, est, err)
}

func figure4(tr *core.Trace) {
	header("Figure 4 — phase plot, δ=500 ms (INRIA–UMd)")
	first := tr.Slice(0, 800)
	p := phase.New(first)
	est, err := phase.EstimateBottleneck(first, 0)
	onLine := p.OnLine(-490, 5)
	fmt.Printf("paper:    only two points on the line rtt_n+1 = rtt_n − 490; scatter around the diagonal\n")
	fmt.Printf("measured: %d points near that line; %.0f%% of points within ±50 ms of the diagonal; compression analysis: %v\n",
		onLine, 100*p.DiagonalFraction(50), errOrOK(err))
	phaseFigure(first, est, err)
}

func figure5(tr *core.Trace) {
	header("Figure 5 — phase plot, δ=8 ms (UMd–Pittsburgh)")
	first := tr.Slice(0, 800)
	p := phase.New(first)
	est, err := phase.EstimateBottleneck(first, 0)
	fmt.Printf("paper:    compression visible near rtt_n+1 = rtt_n − 8; 3 ms clock bands the points\n")
	fmt.Printf("measured: %d points within ±1.5 ms of rtt_n+1 = rtt_n − 8 (of %d); compression analysis: %v\n",
		p.OnLine(-8, 1.5), len(p.Points), errOrOK(err))
	if err == nil && est.ResolutionLimited {
		fmt.Printf("          service time below the 3 ms clock tick ⇒ only a bound: μ ≥ %.2f Mb/s (the paper likewise does not name this path's bottleneck)\n",
			est.BottleneckBps/1e6)
	} else if err == nil {
		fmt.Printf("          estimated μ ≈ %.1f Mb/s (configured bottleneck 10 Mb/s)\n", est.BottleneckBps/1e6)
	}
	phaseFigure(first, est, err)
}

func figure6(tr *core.Trace) {
	header("Figure 6 — phase plot, δ=50 ms (UMd–Pittsburgh)")
	first := tr.Slice(0, 800)
	p := phase.New(first)
	est, err := phase.EstimateBottleneck(first, 40)
	fmt.Printf("paper:    points scatter around the diagonal; regular 3 ms spacing from the source clock\n")
	fmt.Printf("measured: %.0f%% of points within ±5 ms of the diagonal; compression analysis: %v\n",
		100*p.DiagonalFraction(5), errOrOK(err))
	phaseFigure(first, est, err)
}

func figures89(tr20, tr100 *core.Trace) {
	header("Figures 8 & 9 — distribution of w_n+1 − w_n + δ")
	mu := float64(tr20.BottleneckBps)
	a20, err := workload.Analyze(tr20, mu, 1.5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("paper (δ=20 ms):  peaks at P/μ≈4.5 ms, δ=20 ms, ≈35 ms ⇒ b_n = 128·35 − 576 = 3904 bits ≈ 488 B (one FTP packet), then two FTP packets, ...\n")
	fmt.Printf("measured (δ=20 ms): %v\n", a20)
	if bulk, err := a20.InferredBulkBytes(); err == nil {
		fmt.Printf("                  inferred bulk packet ≈ %.0f bytes (configured FTP packets: 512 B)\n", bulk)
	}
	f20 := workload.CompressionFraction(tr20, mu, 3)
	f100 := workload.CompressionFraction(tr100, mu, 3)
	fmt.Printf("paper (δ=100 ms): same structure, but the leftmost (compression) peak much smaller\n")
	fmt.Printf("measured:         compression fraction %.1f%% at δ=20 ms vs %.1f%% at δ=100 ms\n", 100*f20, 100*f100)
	if *plots {
		fmt.Println("\nFigure 8 (δ=20 ms):")
		fmt.Print(plot.Histogram(workload.Distribution(tr20, 1.5), 48))
		fmt.Println("\nFigure 9 (δ=100 ms):")
		fmt.Print(plot.Histogram(workload.Distribution(tr100, 3), 48))
	}
}

func table3(traces map[string]*core.Trace) {
	header("Table 3 — ulp, clp, plg vs δ")
	type paperRow struct{ ulp, clp, plg float64 }
	paper := map[time.Duration]paperRow{
		8 * time.Millisecond:   {0.23, 0.60, 2.5},
		20 * time.Millisecond:  {0.16, 0.42, 1.7},
		50 * time.Millisecond:  {0.12, 0.27, 1.3},
		100 * time.Millisecond: {0.10, 0.18, 1.2},
		200 * time.Millisecond: {0.11, 0.18, 1.2},
		500 * time.Millisecond: {0.10, 0.09, 1.1},
	}
	fmt.Printf("(the paper prints ulp=0.97 at δ=500 ms; its text says ulp stabilizes around 10%%, so that entry is a typo — we list 0.10)\n\n")
	fmt.Printf("%8s | %6s %6s %6s | %6s %6s %6s\n", "δ", "ulp", "clp", "plg", "ulp*", "clp*", "plg*")
	fmt.Printf("%8s | %20s | %20s\n", "", "paper", "measured")
	for _, d := range core.PaperDeltas {
		tr := traces[deltaLabel("inria", d)]
		s := loss.AnalyzeTrace(tr)
		pr := paper[d]
		fmt.Printf("%8v | %6.2f %6.2f %6.1f | %6.2f %6.2f %6.1f\n",
			d, pr.ulp, pr.clp, pr.plg, s.ULP, s.CLP, s.PLG)
	}
}

func section5(tr100 *core.Trace) {
	header("Section 5 — error-control implications")
	lost := tr100.LossIndicator()
	s := loss.Analyze(lost)
	rep := fec.Repetition(lost)
	blk := fec.BlockFEC(lost, 5, 4)
	arq := fec.ARQ(lost, *seed)
	fmt.Printf("paper:    loss gap stays close to 1 even for small δ ⇒ FEC (or repeating the previous packet) adequate for audio\n")
	fmt.Printf("measured (δ=100 ms): plg %.2f; repetition residual loss %.4f (raw %.4f, random baseline %.4f)\n",
		s.PLG, rep.ResidualLossRate, s.ULP, fec.RandomResidual(s.ULP))
	fmt.Printf("          block FEC(5,4) residual %.4f; ARQ mean delay %.2f RTT (mean attempts %.2f)\n",
		blk.ResidualLossRate, arq.MeanDelayRTT, arq.MeanAttempts)
	d := fec.PlayoutDelay(tr100.RTTMillis(), 0.01)
	fmt.Printf("          playout buffer for 1%% late loss: %.1f ms beyond minimum RTT\n", d)
}

func section6(tr20 *core.Trace) {
	header("Section 6 — batch-deterministic analytic model vs measurement")
	// Derive the batch-size law from the measurements via eq. 6,
	// then run the analytic model and compare waiting-time spreads —
	// the paper reports "good correlation".
	mu := float64(tr20.BottleneckBps)
	bits := workload.EstimateBits(tr20, mu)
	if len(bits) == 0 {
		fmt.Println("no data")
		return
	}
	// Discretize the measured b_n into FTP-packet multiples.
	pmf := map[float64]float64{}
	for _, b := range bits {
		k := float64(int(b/4096 + 0.5))
		pmf[k*4096] += 1 / float64(len(bits))
	}
	m := &queue.BatchDeterministic{
		Mu:    mu,
		Delta: tr20.Delta.Seconds(),
		P:     float64(tr20.WireSize) * 8,
		Batch: nil, // StationaryWait uses the pmf directly
	}
	pi := m.StationaryWait(0.002, 0.6, pmf, 8, 400)
	meanW := 0.0
	for i, p := range pi {
		meanW += float64(i) * 0.002 * p
	}
	min, _ := tr20.MinRTT()
	minMs := float64(min) / float64(time.Millisecond)
	measured := 0.0
	for _, ms := range tr20.RTTMillis() {
		measured += ms - minMs
	}
	measured /= float64(tr20.Received()) // mean queueing delay above minimum, ms
	fmt.Printf("paper:    \"analytical results show good correlation with our experimental data\"\n")
	fmt.Printf("measured: model stationary mean wait %.1f ms vs measured mean excess delay %.1f ms (δ=20 ms)\n",
		meanW*1000, measured)
}

func phaseFigure(tr *core.Trace, est phase.Estimate, estErr error) {
	if !*plots {
		return
	}
	p := phase.New(tr)
	var xs, ys []float64
	for _, pt := range p.Points {
		xs = append(xs, pt.X)
		ys = append(ys, pt.Y)
	}
	if len(xs) == 0 {
		return
	}
	lines := []plot.RefLine{{Slope: 1, Intercept: 0, Ch: '\\'}}
	if estErr == nil {
		lines = append(lines, plot.RefLine{Slope: 1, Intercept: -est.InterceptMs, Ch: '-'})
	}
	fmt.Print(plot.Scatter(xs, ys, 80, 24, lines...))
}

func errOrOK(err error) string {
	if err == nil {
		return "compression line found"
	}
	if errors.Is(err, phase.ErrNoCompression) {
		return "no compression line (as the paper observes)"
	}
	return err.Error()
}

func maxRTT(tr *core.Trace) time.Duration {
	var m time.Duration
	for _, s := range tr.Samples {
		if !s.Lost && s.RTT > m {
			m = s.RTT
		}
	}
	return m
}
