// Command phaseplot renders the phase plot (rtt_{n+1} vs rtt_n) of a
// saved trace and prints the Section 4 bottleneck analysis: fixed
// delay D, compression-line intercept, and estimated bottleneck
// bandwidth μ.
//
// Usage:
//
//	phaseplot [-w 72] [-h 28] [-first N] trace.csv
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"

	"netprobe/internal/obs"
	"netprobe/internal/phase"
	"netprobe/internal/plot"
	"netprobe/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("phaseplot: ")
	var (
		w     = flag.Int("w", 72, "plot width in characters")
		h     = flag.Int("h", 28, "plot height in characters")
		first = flag.Int("first", 800, "use only the first N probes (0 = all), as the paper's figures do")
	)
	checkVersion := obs.VersionFlag(flag.CommandLine)
	flag.Parse()
	checkVersion()
	if flag.NArg() != 1 {
		log.Fatal("usage: phaseplot [flags] trace.csv")
	}
	tr, err := trace.Load(flag.Arg(0))
	if err != nil {
		log.Fatal(err)
	}
	if *first > 0 && *first < tr.Len() {
		tr = tr.Slice(0, *first)
	}

	p := phase.New(tr)
	var xs, ys []float64
	for _, pt := range p.Points {
		xs = append(xs, pt.X)
		ys = append(ys, pt.Y)
	}
	if len(xs) == 0 {
		log.Fatal("no consecutive received probe pairs in trace")
	}

	est, estErr := phase.EstimateBottleneck(tr, 0)
	lines := []plot.RefLine{{Slope: 1, Intercept: 0, Ch: '\\'}}
	if estErr == nil {
		lines = append(lines, plot.RefLine{Slope: 1, Intercept: -est.InterceptMs, Ch: '-'})
	}
	fmt.Printf("phase plot of %s (%d points; x = rtt_n, y = rtt_n+1, ms)\n", tr.Name, len(xs))
	fmt.Print(plot.Scatter(xs, ys, *w, *h, lines...))
	switch {
	case estErr == nil:
		fmt.Printf("\n%s\n", est)
	case errors.Is(estErr, phase.ErrNoCompression):
		fmt.Printf("\nno probe-compression line (expected at large δ): D≈%.1f ms, points scatter around the diagonal (%.0f%% within ±5 ms)\n",
			est.FixedDelayMs, 100*p.DiagonalFraction(5))
	default:
		log.Fatal(estErr)
	}
}
