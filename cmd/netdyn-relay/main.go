// Command netdyn-relay aggregates probe-lifecycle event streams from
// remote producers into one online analysis engine — the measurement
// plane's collection point. Probers (netdyn-probe -relay), simulators
// (bolotsim -relay), and sweep drivers (experiments -relay) dial the
// relay and stream their events over TCP in the otrace binary wire
// framing; the relay fans every connection into the in-process online
// engine and serves the aggregated analysis at /online and the
// per-source counters (source.events, source.dropped, relay.conns) at
// /metrics on the -debug-addr server.
//
// Usage:
//
//	netdyn-relay [-listen 127.0.0.1:7777] [-trace events.jsonl]
//	             [-shards 1] [-online-window N] [-lossy] [-queue 1024]
//	             [-stale-after 30s] [-linger 0s]
//	             [-log info] [-logfmt text|json] [-debug-addr :6060]
//	             [-version]
//
// Events arrive already tagged with their job identity (online.Tag on
// the producing side), so the relay's analyzers bucket them per job
// exactly as a local engine would: a sweep relayed from another
// machine produces the same /online numbers the producing process
// would have computed itself.
//
// By default each connection is read under TCP flow control, so a
// bulk transfer (a replayed trace, a finished sim) arrives complete
// and the relayed analysis is exact. -lossy decouples each connection
// with a bounded queue instead: a slow relay drops events (counted as
// source.dropped{source=...}) rather than backpressuring the peer.
//
// -trace additionally appends every relayed event to a trace file —
// the relay as a durable trace collector. A .otr extension selects the
// binary wire form (smaller, cheaper to re-read); anything else is
// JSONL.
//
// -shards N replaces the single online engine with a pool of N
// engines hashed by job tag (online.ShardIndex): per-job event order
// is preserved inside a shard while shards dispatch in parallel, so a
// fleet of concurrent sessions no longer serializes on one dispatcher.
// The merged analysis at /online is bit-identical to what one engine
// would produce; /statusz's online section and the
// online.shard.queue_len / online.shard.dropped gauges show per-shard
// occupancy.
//
// The relay watches itself the way it watches paths: the -debug-addr
// server's /healthz reports readiness (degraded while any connected
// source has been silent past -stale-after), /statusz reports the
// per-source table (event/drop totals, last-event age, heartbeat clock
// skew) plus the pipeline ledger, and /metrics carries the
// pipeline.events / pipeline.lag stage series with the
// pipeline.unaccounted conservation gauge (see internal/pipestat).
//
// SIGINT or SIGTERM drains connected streams (bounded by a 5 s grace
// period), flushes the analyzers, and exits; -linger then holds the
// debug endpoints open so final snapshots can be scraped.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"netprobe/internal/obs"
	"netprobe/internal/online"
	"netprobe/internal/otrace"
	"netprobe/internal/pipestat"
	"netprobe/internal/source"
	"netprobe/internal/tshist"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("netdyn-relay: ")
	var (
		listen = flag.String("listen", "127.0.0.1:7777", "address to accept relayed event streams on")
		events = flag.String("trace", "",
			"append every relayed event to this trace file (.otr = binary wire form, else JSONL); empty disables")
		shards = flag.Int("shards", 1,
			"online engine shards, hashed by job tag (1 = single engine)")
		onlineWin = flag.Int("online-window", 0,
			"cap the online analyzers to the trailing N probes (0 = all-time statistics)")
		lossy = flag.Bool("lossy", false,
			"drop events (counted as source.dropped) instead of backpressuring slow peers")
		queue      = flag.Int("queue", 1024, "per-connection queue capacity in -lossy mode")
		staleAfter = flag.Duration("stale-after", 30*time.Second,
			"mark a connected source degraded on /healthz after this much silence (0 disables)")
		linger = flag.Duration("linger", 0,
			"keep the process (and -debug-addr endpoints) alive this long after shutdown")
		obsFlags    = obs.RegisterFlags(flag.CommandLine)
		tshistFlags = tshist.RegisterFlags(flag.CommandLine)
	)
	flag.Parse()
	// The online pool registers its /online debug handler, so it must
	// exist before Setup starts the -debug-addr server. Each shard
	// carries its own pipeline monitor in its analyzer set; since every
	// NewMonitor call replaces the chain's "analyzers" account, one
	// summed closure over all shard monitors is re-registered below so
	// the ledger closes over the whole pool.
	chain := pipestat.Default.Chain("relay")
	var monitors []*pipestat.Monitor
	pool := online.NewPool(*shards, 0, func(int) []online.Analyzer {
		mon := pipestat.NewMonitor(chain)
		monitors = append(monitors, mon)
		return append(online.DefaultAnalyzers(obs.Default, online.WithWindow(*onlineWin)), mon)
	})
	chain.Applied("analyzers", func() int64 {
		var n int64
		for _, m := range monitors {
			n += m.Applied()
		}
		return n
	})
	online.RegisterDebug(pool)
	pool.ExportMetrics(obs.Default)
	pipestat.Default.Register()
	obs.StatusSection("online", func() any { return pool.Status() })
	// Not ready until the listener is bound; run clears this.
	obs.DefaultHealth.SetError("listener", errNotListening)
	store, err := tshistFlags.Setup(obs.Default, obsFlags.DebugAddr != "")
	if err != nil {
		log.Fatal(err)
	}
	if _, err := obsFlags.Setup(obs.Default); err != nil {
		log.Fatal(err)
	}
	if err := run(*listen, *events, pool, store, chain, *lossy, *queue, *staleAfter); err != nil {
		log.Fatal(err)
	}
	if *linger > 0 {
		slog.Info("lingering; final analysis stays scrapeable", "for", *linger)
		time.Sleep(*linger)
	}
}

// errNotListening is the readiness condition the relay starts in.
var errNotListening = errors.New("listener not bound yet")

func run(listen, events string, pool *online.Pool, store *tshist.Store,
	chain *pipestat.Chain, lossy bool, queue int, staleAfter time.Duration) error {
	// The relayed events already carry Job/Index tags from their
	// producers, so the pool is fed directly — no re-tagging; the pool
	// hashes each event to its job's shard.
	sinks := []otrace.Sink{pool}
	if events != "" {
		w, err := otrace.CreateFile(events)
		if err != nil {
			return err
		}
		sinks = append(sinks, w)
		// The trace-file branch conserves on its own chain: delivered
		// events in, writer events out (the Writer is synchronous and
		// lossless, so this book should always balance).
		trace := pipestat.Default.Chain("relay.trace")
		trace.Applied("writer", w.Events)
		if store != nil {
			// Alert fire/clear events append to the same JSONL trace
			// as the relayed streams, entering through a produce tap so
			// the writer's applied count stays balanced. They never
			// feed the analyzer bus: alerts are judgements about
			// measurements, not measurements.
			store.SetAlerts(trace.Produce(w))
		}
		defer func() {
			if err := w.Close(); err != nil {
				slog.Error("closing event trace", "err", err)
				return
			}
			fmt.Printf("event trace written to %s (%d events)\n", events, w.Events())
		}()
	}

	ln, err := net.Listen("tcp", listen)
	if err != nil {
		obs.DefaultHealth.SetError("listener", err)
		return err
	}
	srv, err := source.Serve(ln, source.ServerConfig{
		Sink:       otrace.Multi(sinks...),
		Metrics:    obs.Default,
		Lossy:      lossy,
		Queue:      queue,
		StaleAfter: staleAfter,
		Health:     obs.DefaultHealth,
		Logf: func(format string, args ...any) {
			slog.Info(fmt.Sprintf(format, args...))
		},
	})
	if err != nil {
		return err
	}
	obs.DefaultHealth.SetError("listener", nil) // bound and accepting: ready
	obs.StatusSection("sources", func() any { return srv.Sources() })
	// The relay chain's books: ingress (delivered + queue drops) must
	// equal the queue drops plus the bus drops plus what the analyzers
	// applied, once drained.
	chain.Produced("ingress", func() int64 {
		delivered, dropped := srv.Totals()
		return delivered + dropped
	})
	chain.Dropped("queue", func() int64 { _, dropped := srv.Totals(); return dropped })
	chain.Dropped("bus", pool.Dropped)
	if events != "" {
		pipestat.Default.Chain("relay.trace").Produced("delivered",
			func() int64 { delivered, _ := srv.Totals(); return delivered })
	}
	fmt.Printf("relaying event streams on %s\n", srv.Addr())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	<-ctx.Done()
	slog.Info("shutting down; draining connected streams")
	if err := srv.Close(); err != nil {
		slog.Error("closing listener", "err", err)
	}
	pool.Close()
	pool.Wait()
	if n := pool.Dropped(); n > 0 {
		slog.Warn("online analysis sampled, not exact", "dropped", n)
	}
	return nil
}
