// Command netdyn-probe sends UDP probe packets at a fixed interval to
// a netdyn-echo server and writes the resulting trace, reproducing the
// paper's data collection on a real network.
//
// Usage:
//
//	netdyn-probe -target host:port [-delta 50ms] [-count 12000]
//	             [-size 32] [-clockres 0] [-out trace.csv]
//
// With no -count, the probe runs for the paper's 10 minutes
// (duration/delta packets).
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"netprobe/internal/loss"
	"netprobe/internal/netdyn"
	"netprobe/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("netdyn-probe: ")
	var (
		target   = flag.String("target", "", "echo host address (required)")
		delta    = flag.Duration("delta", 50*time.Millisecond, "interval between probes")
		count    = flag.Int("count", 0, "number of probes (0 = 10 minutes worth)")
		size     = flag.Int("size", netdyn.DefaultPayload, "UDP payload bytes")
		clockRes = flag.Duration("clockres", 0, "emulated clock resolution (e.g. 3.90625ms)")
		out      = flag.String("out", "", "trace output file (.csv or .json); empty = summary only")
	)
	flag.Parse()
	if *target == "" {
		log.Fatal("missing -target (run netdyn-echo somewhere first)")
	}
	n := *count
	if n == 0 {
		n = int(10 * time.Minute / *delta)
	}
	fmt.Printf("probing %s: %d probes of %d bytes, δ=%v\n", *target, n, *size, *delta)
	tr, err := netdyn.Probe(netdyn.ProbeConfig{
		Target:      *target,
		Delta:       *delta,
		Count:       n,
		PayloadSize: *size,
		ClockRes:    *clockRes,
	})
	if err != nil {
		log.Fatal(err)
	}
	st := loss.AnalyzeTrace(tr)
	min, _ := tr.MinRTT()
	fmt.Printf("%s\nmin RTT %v, %s\n", tr, min, st)
	if *out != "" {
		if err := trace.Save(*out, tr); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("trace written to %s\n", *out)
	}
}
