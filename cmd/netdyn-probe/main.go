// Command netdyn-probe sends UDP probe packets at a fixed interval to
// a netdyn-echo server and writes the resulting trace, reproducing the
// paper's data collection on a real network.
//
// While the run is in flight it periodically reports live path
// statistics through the structured logger: probes sent, received,
// and (settled) lost, the running unconditional and conditional loss
// probabilities, and the min/p50/p99 of the round-trip times so far.
//
// Usage:
//
//	netdyn-probe -target host:port [-delta 50ms] [-count 12000]
//	             [-size 32] [-clockres 0] [-out trace.csv]
//	             [-trace events.jsonl] [-report 10s]
//	             [-online] [-online-window N] [-relay host:port]
//	             [-supervise] [-faults plan.json]
//	             [-log info] [-logfmt text|json] [-debug-addr :6060]
//	             [-version]
//	netdyn-probe -agent coord:port [-agent-name x] [-capacity 1]
//	             [-agent-hb 2s] [-relay host:port] [-faults plan.json] [...]
//
// With no -count, the probe runs for the paper's 10 minutes
// (duration/delta packets). -report 0 disables the in-flight reports.
// -trace streams every probe's lifecycle events (run_start,
// probe_sent, rtt, gap) as otrace JSONL — the same schema the
// simulator writes — through a bounded queue so a slow disk never
// delays probe pacing.
//
// -online tees the same event stream into the in-process analysis
// engine (internal/online): running loss statistics, the live
// bottleneck-μ estimate, and the workload histogram are served as
// JSON at /online on the -debug-addr server while probes are still in
// flight. -online-window keeps only the trailing N probes in those
// statistics, so a long deployment reports current path behavior
// instead of an all-time average. The tee is a non-blocking bounded
// bus, so analysis can never delay probe pacing either.
//
// -relay streams the same events to a netdyn-relay collector over TCP
// (otrace wire framing), tagged with the probe target, so a central
// aggregator runs the online analysis for many probers at once. The
// relay sink sits behind the same kind of bounded queue: a slow or
// stalled relay drops events rather than delaying probe pacing.
//
// -supervise (on by default) runs the fault-tolerant session:
// transient send errors are retried with backoff, fatal socket errors
// recreate the socket, and unreachable stretches are recorded as
// outage gaps that the final loss statistics exclude. -faults applies
// a deterministic fault-injection plan (internal/faultinject JSON) to
// the probe socket — the chaos-testing path.
//
// -agent switches the process into fleet mode: it registers with a
// netdyn-coord coordinator and executes the job specs the coordinator
// pushes — "probe" jobs as supervised netdyn sessions, "sim" jobs as
// simulator runs of the named preset — streaming each job's events to
// the -relay collector tagged with the job's instance id. The relay
// stream auto-redials with jittered backoff, so a relay restart costs
// events while it is down (counted and conserved in the wire chain's
// ledger) but never kills the agent; likewise the agent reconnects to
// a restarted coordinator and in-flight jobs are re-dispatched.
//
// SIGINT or SIGTERM ends the run gracefully: the sender stops,
// stragglers are drained, and the partial trace, event file, and loss
// statistics are flushed before exit.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"netprobe/internal/faultinject"
	"netprobe/internal/loss"
	"netprobe/internal/netdyn"
	"netprobe/internal/obs"
	"netprobe/internal/online"
	"netprobe/internal/otrace"
	"netprobe/internal/pipestat"
	"netprobe/internal/source"
	"netprobe/internal/trace"
	"netprobe/internal/tshist"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("netdyn-probe: ")
	var (
		target   = flag.String("target", "", "echo host address (required)")
		delta    = flag.Duration("delta", 50*time.Millisecond, "interval between probes")
		count    = flag.Int("count", 0, "number of probes (0 = 10 minutes worth)")
		size     = flag.Int("size", netdyn.DefaultPayload, "UDP payload bytes")
		clockRes = flag.Duration("clockres", 0, "emulated clock resolution (e.g. 3.90625ms)")
		out      = flag.String("out", "", "trace output file (.csv or .json); empty = summary only")
		events   = flag.String("trace", "", "probe-lifecycle event output file (.otr = binary wire form, else otrace JSONL); empty disables")
		report   = flag.Duration("report", 10*time.Second, "in-flight progress report interval (0 disables)")
		onlineOn = flag.Bool("online", false,
			"stream probe events through the online analysis engine (serves /online on -debug-addr)")
		onlineWin = flag.Int("online-window", 0,
			"cap the online analyzers to the trailing N probes (0 = all-time statistics)")
		relay = flag.String("relay", "",
			"stream probe events to a netdyn-relay collector at this address; empty disables")
		supervise = flag.Bool("supervise", true,
			"fault-tolerant session: retry transient send errors, recreate the socket on fatal ones, record outages as gaps")
		faults = flag.String("faults", "",
			"fault-injection plan (JSON, see internal/faultinject) applied to the probe socket")
		agent = flag.String("agent", "",
			"fleet mode: register with the netdyn-coord coordinator at this address and execute pushed jobs (ignores -target)")
		agentName = flag.String("agent-name", "", "agent name in fleet mode (default <hostname>-<pid>)")
		capacity  = flag.Int("capacity", 1, "concurrent jobs this agent accepts in fleet mode")
		agentHB   = flag.Duration("agent-hb", 2*time.Second,
			"control-plane heartbeat interval in fleet mode; keep well under the coordinator's -lease")
		obsFlags    = obs.RegisterFlags(flag.CommandLine)
		tshistFlags = tshist.RegisterFlags(flag.CommandLine)
	)
	flag.Parse()
	if *agent != "" {
		// Fleet mode: the coordinator pushes the job specs; flags that
		// describe a single session (-target, -delta, ...) are unused.
		// The debug endpoints still serve /statusz, /metrics, and the
		// wire chain's conservation ledger.
		pipestat.Default.Register()
		if _, err := tshistFlags.Setup(obs.Default, obsFlags.DebugAddr != ""); err != nil {
			log.Fatal(err)
		}
		if _, err := obsFlags.Setup(obs.Default); err != nil {
			log.Fatal(err)
		}
		name := *agentName
		if name == "" {
			host, _ := os.Hostname()
			if host == "" {
				host = "agent"
			}
			name = fmt.Sprintf("%s-%d", host, os.Getpid())
		}
		if err := runAgentMode(*agent, name, *capacity, *agentHB, *relay, *faults); err != nil {
			log.Fatal(err)
		}
		return
	}
	// The online engine registers its /online debug handler, so it must
	// exist before Setup starts the -debug-addr server. The pipeline
	// monitor rides in the analyzer set, closing the online chain's
	// conservation ledger at the applied stage (internal/pipestat).
	var bus *online.Bus
	var eng *online.Engine
	if *onlineOn {
		mon := pipestat.NewMonitor(pipestat.Default.Chain("online"))
		bus = online.NewBus()
		eng = online.NewEngine(bus, 0,
			append(online.DefaultAnalyzers(obs.Default, online.WithWindow(*onlineWin)), mon)...)
		online.RegisterDebug(eng)
		obs.StatusSection("online", func() any {
			length, capacity := eng.Queue()
			return map[string]any{"queue_len": length, "queue_cap": capacity, "dropped": eng.Dropped()}
		})
	}
	pipestat.Default.Register()
	store, err := tshistFlags.Setup(obs.Default, obsFlags.DebugAddr != "")
	if err != nil {
		log.Fatal(err)
	}
	if _, err := obsFlags.Setup(obs.Default); err != nil {
		log.Fatal(err)
	}
	if *target == "" {
		log.Fatal("missing -target (run netdyn-echo somewhere first)")
	}
	n := *count
	if n == 0 {
		n = int(10 * time.Minute / *delta)
	}
	// SIGINT/SIGTERM cancels the run context: the sender stops, the
	// drain still happens, and every deferred flush below runs before
	// the process exits — a truncated run leaves readable artifacts.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	cfg := netdyn.ProbeConfig{
		Target:      *target,
		Delta:       *delta,
		Count:       n,
		PayloadSize: *size,
		ClockRes:    *clockRes,
		Context:     ctx,
		Metrics:     obs.Default,
	}
	if *supervise {
		cfg.Supervise = &netdyn.SuperviseConfig{}
	}
	// run owns everything that must be flushed on every exit path; its
	// defers run even when the probe fails, which a bare log.Fatal in
	// main would skip.
	if err := run(cfg, bus, eng, store, *events, *out, *relay, *report, *faults); err != nil {
		log.Fatal(err)
	}
}

func run(cfg netdyn.ProbeConfig, bus *online.Bus, eng *online.Engine, store *tshist.Store,
	events, out, relay string, report time.Duration, faultsPath string) error {
	fmt.Printf("probing %s: %d probes of %d bytes, δ=%v\n", cfg.Target, cfg.Count, cfg.PayloadSize, cfg.Delta)
	var sinks []otrace.Sink
	if events != "" {
		w, err := otrace.CreateFile(events)
		if err != nil {
			return err
		}
		// The trace branch keeps its own conservation books: produced at
		// the tap, dropped by the bounded queue, applied by the writer.
		chain := pipestat.Default.Chain("trace")
		b := otrace.NewBounded(w, 4096)
		chain.Applied("writer", w.Events)
		chain.Dropped("queue", b.Dropped)
		tsink := chain.Produce(b)
		sinks = append(sinks, tsink)
		if store != nil {
			// Alert fire/clear events land in the same JSONL trace as
			// probe lifecycles — entering through the produce tap so
			// the trace chain's conservation books stay balanced. They
			// never feed the online bus: alerts are judgements about
			// measurements, not measurements.
			store.SetAlerts(tsink)
		}
		defer func() {
			b.Close() //nolint:errcheck // always nil
			if err := w.Close(); err != nil {
				slog.Error("closing event trace", "err", err)
				return
			}
			if d := b.Dropped(); d > 0 {
				slog.Warn("event trace incomplete", "dropped", d)
			}
			fmt.Printf("event trace written to %s (%d events)\n", events, w.Events())
		}()
	}
	if bus != nil {
		// Events are tagged with the target so the /online snapshots
		// carry a meaningful job name; Produce stamps them for stage-lag
		// tracing and counts them into the online chain's ledger.
		chain := pipestat.Default.Chain("online")
		chain.Dropped("bus", bus.Dropped)
		sinks = append(sinks, chain.Produce(online.Tag(bus, cfg.Target, 0)))
	}
	if relay != "" {
		sender, err := source.Dial(relay)
		if err != nil {
			return err
		}
		// Tagged like the local bus so the relay's analyzers key this
		// prober by its target; bounded so a stalled relay can only
		// lose events, never delay probe pacing — and every loss lands
		// in the wire chain's books (queue drops or sender drops). The
		// wire_sent stage tap, sitting past the queue, records how far
		// frame writes lag the probe that caused them. Heartbeats keep
		// the relay's staleness and clock-skew tracking fed between
		// probes.
		chain := pipestat.Default.Chain("wire")
		chain.Applied("sender", sender.Sent)
		chain.Dropped("sender", sender.Dropped)
		sender.StartHeartbeats(2 * time.Second)
		b := otrace.NewBounded(online.Tag(chain.Stage(pipestat.StageWireSent, sender), cfg.Target, 0), 4096)
		chain.Dropped("queue", b.Dropped)
		sinks = append(sinks, chain.Produce(b))
		slog.Info("relaying events", "to", relay)
		defer func() {
			b.Close() //nolint:errcheck // always nil
			if err := sender.Close(); err != nil {
				slog.Warn("relay stream incomplete", "err", err)
			}
			if d := b.Dropped(); d > 0 {
				slog.Warn("relay stream incomplete", "dropped", d)
			}
		}()
	}
	cfg.Trace = otrace.Multi(sinks...)
	if faultsPath != "" {
		plan, err := faultinject.Load(faultsPath)
		if err != nil {
			return err
		}
		open := func() (net.PacketConn, error) {
			inner, err := net.ListenPacket("udp", "")
			if err != nil {
				return nil, err
			}
			return faultinject.WrapPacketConn(inner, plan,
				faultinject.WithSeq(netdyn.PacketSeq),
				faultinject.WithSink(cfg.Trace),
				faultinject.WithRegistry(obs.Default)), nil
		}
		conn, err := open()
		if err != nil {
			return err
		}
		cfg.Conn = conn
		if cfg.Supervise != nil {
			// Recreated sockets stay impaired: the plan survives redials.
			cfg.Supervise.Redial = open
		}
		slog.Info("fault plan loaded", "path", faultsPath)
	}
	if report > 0 {
		cfg.ReportEvery = report
		cfg.Report = func(r netdyn.ProbeReport) {
			slog.Info("probe progress",
				"elapsed", r.Elapsed.Round(time.Second),
				"sent", r.Sent, "recv", r.Received,
				"lost", r.Lost, "inflight", r.InFlight,
				"ulp", fmt.Sprintf("%.3f", r.ULP),
				"clp", fmt.Sprintf("%.3f", r.CLP),
				"rtt_min", r.RTTMin.Round(time.Millisecond),
				"rtt_p50", r.RTTP50.Round(time.Millisecond),
				"rtt_p99", r.RTTP99.Round(time.Millisecond))
		}
	}
	d, err := netdyn.ProbeDetailed(cfg)
	if eng != nil {
		bus.Close()
		eng.Wait()
		if n := eng.Dropped(); n > 0 {
			slog.Warn("online analysis sampled, not exact", "dropped", n)
		}
	}
	if err != nil {
		return err
	}
	tr := d.Trace
	if d.Interrupted {
		fmt.Printf("interrupted by signal after %d of %d probes; partial results follow\n",
			len(tr.Samples), cfg.Count)
	}
	st := loss.AnalyzeExcluding(tr.LossIndicator(), d.Excluded())
	min, _ := tr.MinRTT()
	fmt.Printf("%s\nmin RTT %v, %s\n", tr, min, st)
	if len(d.Gaps) > 0 {
		excluded := 0
		for _, g := range d.Gaps {
			excluded += g.Count
		}
		fmt.Printf("%d outage gap(s), %d probes excluded from the loss statistics\n",
			len(d.Gaps), excluded)
	}
	if out != "" {
		if err := trace.Save(out, tr); err != nil {
			return err
		}
		fmt.Printf("trace written to %s\n", out)
	}
	return nil
}
