// Command netdyn-probe sends UDP probe packets at a fixed interval to
// a netdyn-echo server and writes the resulting trace, reproducing the
// paper's data collection on a real network.
//
// While the run is in flight it periodically reports live path
// statistics through the structured logger: probes sent, received,
// and (settled) lost, the running unconditional and conditional loss
// probabilities, and the min/p50/p99 of the round-trip times so far.
//
// Usage:
//
//	netdyn-probe -target host:port [-delta 50ms] [-count 12000]
//	             [-size 32] [-clockres 0] [-out trace.csv]
//	             [-trace events.jsonl] [-report 10s] [-online]
//	             [-log info] [-logfmt text|json] [-debug-addr :6060]
//
// With no -count, the probe runs for the paper's 10 minutes
// (duration/delta packets). -report 0 disables the in-flight reports.
// -trace streams every probe's lifecycle events (run_start,
// probe_sent, rtt) as otrace JSONL — the same schema the simulator
// writes — through a bounded queue so a slow disk never delays probe
// pacing.
//
// -online tees the same event stream into the in-process analysis
// engine (internal/online): running loss statistics, the live
// bottleneck-μ estimate, and the workload histogram are served as
// JSON at /online on the -debug-addr server while probes are still in
// flight. The tee is a non-blocking bounded bus, so analysis can never
// delay probe pacing either.
package main

import (
	"flag"
	"fmt"
	"log"
	"log/slog"
	"time"

	"netprobe/internal/loss"
	"netprobe/internal/netdyn"
	"netprobe/internal/obs"
	"netprobe/internal/online"
	"netprobe/internal/otrace"
	"netprobe/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("netdyn-probe: ")
	var (
		target   = flag.String("target", "", "echo host address (required)")
		delta    = flag.Duration("delta", 50*time.Millisecond, "interval between probes")
		count    = flag.Int("count", 0, "number of probes (0 = 10 minutes worth)")
		size     = flag.Int("size", netdyn.DefaultPayload, "UDP payload bytes")
		clockRes = flag.Duration("clockres", 0, "emulated clock resolution (e.g. 3.90625ms)")
		out      = flag.String("out", "", "trace output file (.csv or .json); empty = summary only")
		events   = flag.String("trace", "", "probe-lifecycle event output file (otrace JSONL); empty disables")
		report   = flag.Duration("report", 10*time.Second, "in-flight progress report interval (0 disables)")
		onlineOn = flag.Bool("online", false,
			"stream probe events through the online analysis engine (serves /online on -debug-addr)")
		obsFlags = obs.RegisterFlags(flag.CommandLine)
	)
	flag.Parse()
	// The online engine registers its /online debug handler, so it must
	// exist before Setup starts the -debug-addr server.
	var bus *online.Bus
	var eng *online.Engine
	if *onlineOn {
		bus = online.NewBus()
		eng = online.NewEngine(bus, 0, online.DefaultAnalyzers(obs.Default)...)
		online.RegisterDebug(eng)
	}
	if _, err := obsFlags.Setup(obs.Default); err != nil {
		log.Fatal(err)
	}
	if *target == "" {
		log.Fatal("missing -target (run netdyn-echo somewhere first)")
	}
	n := *count
	if n == 0 {
		n = int(10 * time.Minute / *delta)
	}
	fmt.Printf("probing %s: %d probes of %d bytes, δ=%v\n", *target, n, *size, *delta)
	cfg := netdyn.ProbeConfig{
		Target:      *target,
		Delta:       *delta,
		Count:       n,
		PayloadSize: *size,
		ClockRes:    *clockRes,
	}
	var sinks []otrace.Sink
	if *events != "" {
		w, err := otrace.Create(*events)
		if err != nil {
			log.Fatal(err)
		}
		b := otrace.NewBounded(w, 4096)
		sinks = append(sinks, b)
		defer func() {
			b.Close() //nolint:errcheck // always nil
			if err := w.Close(); err != nil {
				log.Fatal(err)
			}
			if d := b.Dropped(); d > 0 {
				slog.Warn("event trace incomplete", "dropped", d)
			}
			fmt.Printf("event trace written to %s (%d events)\n", *events, w.Events())
		}()
	}
	if bus != nil {
		// Events are tagged with the target so the /online snapshots
		// carry a meaningful job name.
		sinks = append(sinks, online.Tag(bus, *target, 0))
	}
	cfg.Trace = otrace.Multi(sinks...)
	if *report > 0 {
		cfg.ReportEvery = *report
		cfg.Report = func(r netdyn.ProbeReport) {
			slog.Info("probe progress",
				"elapsed", r.Elapsed.Round(time.Second),
				"sent", r.Sent, "recv", r.Received,
				"lost", r.Lost, "inflight", r.InFlight,
				"ulp", fmt.Sprintf("%.3f", r.ULP),
				"clp", fmt.Sprintf("%.3f", r.CLP),
				"rtt_min", r.RTTMin.Round(time.Millisecond),
				"rtt_p50", r.RTTP50.Round(time.Millisecond),
				"rtt_p99", r.RTTP99.Round(time.Millisecond))
		}
	}
	tr, err := netdyn.Probe(cfg)
	if eng != nil {
		bus.Close()
		eng.Wait()
		if d := eng.Dropped(); d > 0 {
			slog.Warn("online analysis sampled, not exact", "dropped", d)
		}
	}
	if err != nil {
		log.Fatal(err)
	}
	st := loss.AnalyzeTrace(tr)
	min, _ := tr.MinRTT()
	fmt.Printf("%s\nmin RTT %v, %s\n", tr, min, st)
	if *out != "" {
		if err := trace.Save(*out, tr); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("trace written to %s\n", *out)
	}
}
