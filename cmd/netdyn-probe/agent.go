package main

import (
	"context"
	"fmt"
	"log/slog"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"netprobe/internal/coord"
	"netprobe/internal/core"
	"netprobe/internal/faultinject"
	"netprobe/internal/netdyn"
	"netprobe/internal/obs"
	"netprobe/internal/otrace"
	"netprobe/internal/pipestat"
	"netprobe/internal/source"
)

// Agent mode: instead of running one probe session from flags, the
// process registers with a netdyn-coord coordinator and executes the
// job specs it pushes — "probe" jobs as real netdyn sessions against
// the spec's target, "sim" jobs as simulator runs of the named preset.
// Each job's lifecycle events stream to the -relay collector tagged
// with the job's instance id, so the relay's online analyzers bucket
// the whole fleet per job. The relay connection auto-redials
// (source.DialAuto): a relay restart costs events while it is down
// (counted, conserved) but never kills the agent.

// runAgentMode is main's -agent branch. It blocks until SIGINT/SIGTERM.
func runAgentMode(coordAddr, name string, capacity int, heartbeat time.Duration,
	relay string, faultsPath string) error {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// Data plane: an auto-redialing relay stream behind a bounded
	// queue, accounted on the wire chain exactly like -relay in probe
	// mode. Without -relay the events are discarded (the control plane
	// still reports probe/loss totals per job).
	var sink otrace.Sink = otrace.Discard
	if relay != "" {
		sender := source.DialAuto(relay, source.Redial{
			Logf: func(format string, args ...any) {
				slog.Warn(fmt.Sprintf(format, args...))
			},
		})
		chain := pipestat.Default.Chain("wire")
		chain.Applied("sender", sender.Sent)
		chain.Dropped("sender", sender.Dropped)
		sender.StartHeartbeats(2 * time.Second)
		b := otrace.NewBounded(chain.Stage(pipestat.StageWireSent, sender), 4096)
		chain.Dropped("queue", b.Dropped)
		sink = chain.Produce(b)
		slog.Info("relaying job events", "to", relay)
		defer func() {
			b.Close() //nolint:errcheck // always nil
			if err := sender.Close(); err != nil {
				slog.Warn("relay stream incomplete", "err", err)
			}
		}()
	}

	// A -faults plan on the agent command line applies to every probe
	// job the agent runs; a plan inside a job spec overrides it.
	var defaultPlan *faultinject.Plan
	if faultsPath != "" {
		p, err := faultinject.Load(faultsPath)
		if err != nil {
			return err
		}
		defaultPlan = p
		slog.Info("fault plan loaded", "path", faultsPath)
	}

	fmt.Printf("agent %s: executing jobs from %s (capacity %d)\n", name, coordAddr, capacity)
	err := coord.RunAgent(ctx, coordAddr, coord.AgentConfig{
		Name:      name,
		Capacity:  capacity,
		Heartbeat: heartbeat,
		Sink:      sink,
		Run: func(ctx context.Context, id string, spec coord.Spec, sink otrace.Sink) (coord.Result, error) {
			return executeJob(ctx, spec, sink, defaultPlan)
		},
		Logf: func(format string, args ...any) {
			slog.Info(fmt.Sprintf(format, args...))
		},
	})
	if ctx.Err() != nil {
		slog.Info("agent shutting down")
		return nil
	}
	return err
}

// executeJob dispatches one pushed job spec to its executor.
func executeJob(ctx context.Context, spec coord.Spec, sink otrace.Sink,
	defaultPlan *faultinject.Plan) (coord.Result, error) {
	plan := defaultPlan
	if spec.Faults != "" {
		p, err := faultinject.Parse([]byte(spec.Faults))
		if err != nil {
			return coord.Result{}, fmt.Errorf("job fault plan: %w", err)
		}
		plan = p
	}
	switch spec.Mode {
	case "sim":
		return executeSimJob(spec, sink, plan)
	case "probe", "":
		return executeProbeJob(ctx, spec, sink, plan)
	default:
		return coord.Result{}, fmt.Errorf("unknown job mode %q", spec.Mode)
	}
}

// executeSimJob runs a simulator job: Target names a core preset.
// The simulation is virtual-time and typically finishes in
// milliseconds, so it does not watch ctx.
func executeSimJob(spec coord.Spec, sink otrace.Sink, plan *faultinject.Plan) (coord.Result, error) {
	preset, ok := core.PresetByName(spec.Target)
	if !ok {
		return coord.Result{}, fmt.Errorf("unknown sim preset %q", spec.Target)
	}
	delta := spec.Delta.D()
	if delta <= 0 {
		delta = 50 * time.Millisecond
	}
	cfg := preset.Config(delta, spec.Duration.D(), spec.Seed)
	if spec.Count > 0 {
		cfg.Count = spec.Count
	}
	if spec.PayloadBytes > 0 {
		cfg.PayloadSize = spec.PayloadBytes
	}
	cfg.Faults = plan
	cfg.Metrics = obs.Default
	cfg.Trace = sink
	tr, err := core.RunSim(cfg)
	if err != nil {
		return coord.Result{}, err
	}
	return coord.Result{Probes: tr.Len(), Losses: tr.Len() - tr.Received()}, nil
}

// executeProbeJob runs a real netdyn session against the spec's
// target, supervised (transient errors retried, outages recorded as
// gaps). The job's ctx aborts it — agent shutdown or a coordinator
// loss ends the session gracefully with partial results.
func executeProbeJob(ctx context.Context, spec coord.Spec, sink otrace.Sink,
	plan *faultinject.Plan) (coord.Result, error) {
	if spec.Target == "" {
		return coord.Result{}, fmt.Errorf("probe job has no target")
	}
	delta := spec.Delta.D()
	if delta <= 0 {
		delta = 50 * time.Millisecond
	}
	n := spec.Count
	if n == 0 {
		dur := spec.Duration.D()
		if dur <= 0 {
			dur = 10 * time.Minute
		}
		n = int(dur / delta)
	}
	cfg := netdyn.ProbeConfig{
		Target:      spec.Target,
		Delta:       delta,
		Count:       n,
		PayloadSize: spec.PayloadBytes,
		Context:     ctx,
		Metrics:     obs.Default,
		Trace:       sink,
		Supervise:   &netdyn.SuperviseConfig{},
	}
	if plan != nil {
		open := func() (net.PacketConn, error) {
			inner, err := net.ListenPacket("udp", "")
			if err != nil {
				return nil, err
			}
			return faultinject.WrapPacketConn(inner, plan,
				faultinject.WithSeq(netdyn.PacketSeq),
				faultinject.WithSink(sink),
				faultinject.WithRegistry(obs.Default)), nil
		}
		conn, err := open()
		if err != nil {
			return coord.Result{}, err
		}
		cfg.Conn = conn
		cfg.Supervise.Redial = open // recreated sockets stay impaired
	}
	d, err := netdyn.ProbeDetailed(cfg)
	if err != nil {
		return coord.Result{}, err
	}
	tr := d.Trace
	return coord.Result{Probes: tr.Len(), Losses: tr.Len() - tr.Received()}, nil
}
