// Command manifestdiff compares two performance artifacts — run
// manifests (experiments-manifest.json) or benchmark snapshots
// (BENCH_*.json) — and exits non-zero when the newer one regressed.
// It is the perf gate behind `make perf-gate`: commit a baseline
// manifest, rerun the sweep on a branch, and diff.
//
// Usage:
//
//	manifestdiff [flags] OLD NEW
//
//	manifestdiff baseline-manifest.json experiments-manifest.json
//	manifestdiff -wall-tol 1.5 BENCH_2026-07-01.json BENCH_2026-08-05.json
//
// Exit status: 0 when NEW is within thresholds, 1 on regression, 2 on
// usage or parse errors.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"netprobe/internal/obs"
	"netprobe/internal/perfgate"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("manifestdiff: ")
	wallTol := flag.Float64("wall-tol", 1.30,
		"per-job wall-time slowdown ratio above which a job regresses")
	wallMin := flag.Float64("wall-min", 5,
		"noise floor in milliseconds: smaller absolute slowdowns never regress")
	lossTol := flag.Float64("loss-tol", 0.02,
		"largest allowed absolute change in a loss statistic (ulp/clp)")
	benchTol := flag.Float64("bench-tol", 0,
		"benchmark metric slowdown ratio (default: wall-tol)")
	verbose := flag.Bool("v", false, "print every delta, not just regressions")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: manifestdiff [flags] OLD NEW\n\ncompares two run manifests or two benchmark snapshots\n\n")
		flag.PrintDefaults()
	}
	checkVersion := obs.VersionFlag(flag.CommandLine)
	flag.Parse()
	checkVersion()
	if flag.NArg() != 2 {
		flag.Usage()
		os.Exit(2)
	}

	oldData, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		log.Println(err)
		os.Exit(2)
	}
	newData, err := os.ReadFile(flag.Arg(1))
	if err != nil {
		log.Println(err)
		os.Exit(2)
	}
	rep, err := perfgate.Compare(oldData, newData, perfgate.Options{
		WallRatio:  *wallTol,
		WallMinMS:  *wallMin,
		LossAbs:    *lossTol,
		BenchRatio: *benchTol,
	})
	if err != nil {
		log.Println(err)
		os.Exit(2)
	}

	regs := rep.Regressions()
	for _, d := range rep.Deltas {
		if !*verbose && !d.Regression {
			continue
		}
		mark := "  "
		if d.Regression {
			mark = "✗ "
		}
		fmt.Printf("%s%-40s old=%-12g new=%-12g %s\n", mark, d.Name, d.Old, d.New, d.Note)
	}
	fmt.Printf("%s: %d quantities compared, %d regressions\n", rep.Format, len(rep.Deltas), len(regs))
	if len(regs) > 0 {
		os.Exit(1)
	}
}
