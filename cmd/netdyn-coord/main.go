// Command netdyn-coord is the measurement fleet's control plane: it
// accepts agent registrations (netdyn-probe -agent) and schedules
// probe jobs across them — the coordinator half of the architecture
// whose data plane is netdyn-relay. Control frames ride the same
// otrace wire framing as measurement events (the ctrl_* kind family),
// so one framing layer serves both planes.
//
// Usage:
//
//	netdyn-coord [-listen 127.0.0.1:7788] [-jobs jobs.json]
//	             [-max-attempts 3] [-stale-after 10s]
//	             [-journal coord.otr] [-journal-sync interval]
//	             [-journal-max-bytes 4194304]
//	             [-lease 0s] [-recovery-grace 1s]
//	             [-wait] [-linger 0s]
//	             [-log info] [-logfmt text|json] [-debug-addr :6060]
//	             [-version]
//
// -jobs names a JSON array of job specs (see internal/coord.Spec):
//
//	[{"name": "inria-20ms", "mode": "sim", "target": "inria",
//	  "delta": "20ms", "duration": "30s", "seed": 42},
//	 {"name": "lab-probe", "mode": "probe", "target": "10.0.0.7:7",
//	  "delta": "50ms", "count": 600, "every": "10m", "runs": 6}]
//
// One-shot specs are queued immediately; specs with "every" recur on
// that period ("runs" bounds the instance count). Agents that
// disconnect mid-job have their jobs re-queued (bounded by
// -max-attempts); agents reconnect on their own, so either side
// restarts without losing the job table's integrity.
//
// -journal makes the job table durable: every transition is appended
// to a ctrl_* write-ahead journal in the standard OTR2 framing, and a
// restart with the same path replays it — completed work stays
// completed, instances that were running are re-queued after
// -recovery-grace (long enough for a surviving agent to resend its
// completion first), and recurring specs resume their recurrence
// index instead of restarting it. -journal-sync picks the fsync
// policy (always, interval, none) and -journal-max-bytes the
// compaction threshold. -lease enables heartbeat-renewed agent
// leases: an agent silent past the lease is evicted and its
// instances re-queued, catching half-dead peers whose TCP connection
// never closes.
//
// The coordinator surfaces itself through the standard observability
// stack with zero new serving code: /statusz carries the job counts,
// agent table (with lease age and eviction columns), journal stats,
// and recent instances; /metrics carries the
// coord.jobs.{pending,running,completed} gauges, the
// coord.jobs.{requeued,failed} and coord.agents.evicted counters,
// and the coord.jobs.starved gauge feeding the default agents_lost
// alert rule (and, with -history, their tshist ring buffers feed
// /dashboard like any other gauge).
//
// -wait exits once the job table is idle — no pending or running
// instances — the batch-driver mode the fleet demo uses. It suits
// one-shot specs; a recurring spec can make an idle table transient
// (the next tick refills it), so recurring fleets should use the
// default serve-until-signal mode.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"netprobe/internal/coord"
	"netprobe/internal/obs"
	"netprobe/internal/tshist"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("netdyn-coord: ")
	var (
		listen     = flag.String("listen", "127.0.0.1:7788", "address to accept agent control connections on")
		jobsPath   = flag.String("jobs", "", "JSON jobs file of coord.Spec entries; empty starts with an empty table")
		maxAtt     = flag.Int("max-attempts", 3, "dispatch attempts per job instance before it fails")
		staleAfter = flag.Duration("stale-after", 10*time.Second,
			"mark a connected agent stale on /statusz after this much control-plane silence (0 disables)")
		journalPath = flag.String("journal", "",
			"write-ahead journal file; an existing journal is replayed so the job table survives restarts")
		journalSync = flag.String("journal-sync", string(coord.SyncInterval),
			"journal fsync policy: always, interval, or none")
		journalMax = flag.Int64("journal-max-bytes", 4<<20,
			"compact the journal when it outgrows this many bytes (-1 never)")
		lease = flag.Duration("lease", 0,
			"evict agents silent past this heartbeat lease and re-queue their jobs (0 disables)")
		recoveryGrace = flag.Duration("recovery-grace", time.Second,
			"hold recovered running instances this long before re-dispatch, so surviving agents can resend completions")
		wait = flag.Bool("wait", false,
			"exit once every job has settled instead of serving until SIGINT/SIGTERM")
		linger = flag.Duration("linger", 0,
			"keep the process (and -debug-addr endpoints) alive this long after shutdown")
		obsFlags    = obs.RegisterFlags(flag.CommandLine)
		tshistFlags = tshist.RegisterFlags(flag.CommandLine)
	)
	flag.Parse()

	var specs []coord.Spec
	if *jobsPath != "" {
		var err error
		specs, err = coord.LoadSpecs(*jobsPath)
		if err != nil {
			log.Fatal(err)
		}
	}

	var (
		journal   *coord.Journal
		recovered *coord.Recovered
	)
	if *journalPath != "" {
		var err error
		journal, recovered, err = coord.OpenJournal(*journalPath, coord.JournalOptions{
			Sync:     coord.SyncPolicy(*journalSync),
			MaxBytes: *journalMax,
		})
		if err != nil {
			log.Fatal(err)
		}
		if recovered != nil && len(recovered.Jobs) > 0 {
			jc := recovered.Counts()
			slog.Info("journal recovered", "path", *journalPath,
				"jobs", len(recovered.Jobs), "pending", jc.Pending,
				"running", jc.Running, "completed", jc.Completed,
				"failed", jc.Failed, "truncated", recovered.Truncated)
		}
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatal(err)
	}
	c := coord.Serve(ln, coord.Config{
		Specs:         specs,
		MaxAttempts:   *maxAtt,
		StaleAfter:    *staleAfter,
		Journal:       journal,
		Recovered:     recovered,
		RecoveryGrace: *recoveryGrace,
		LeaseTimeout:  *lease,
		Metrics:       obs.Default,
		Logf: func(format string, args ...any) {
			slog.Info(fmt.Sprintf(format, args...))
		},
	})
	obs.StatusSection("coord", func() any { return c.Status() })
	if _, err := tshistFlags.Setup(obs.Default, obsFlags.DebugAddr != ""); err != nil {
		log.Fatal(err)
	}
	if _, err := obsFlags.Setup(obs.Default); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("coordinating %d job spec(s) on %s\n", len(specs), c.Addr())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *wait {
		if err := c.WaitIdle(ctx); err != nil {
			log.Fatalf("interrupted with jobs outstanding: %v", err)
		}
		counts := c.Counts()
		fmt.Printf("all jobs settled: %d completed, %d failed\n", counts.Completed, counts.Failed)
		if counts.Failed > 0 {
			defer os.Exit(1)
		}
	} else {
		<-ctx.Done()
		slog.Info("shutting down")
	}
	if err := c.Close(); err != nil {
		slog.Error("closing coordinator", "err", err)
	}
	if journal != nil {
		if err := journal.Close(); err != nil {
			slog.Error("closing journal", "err", err)
		}
	}
	if *linger > 0 {
		slog.Info("lingering; final state stays scrapeable", "for", *linger)
		time.Sleep(*linger)
	}
}
