// Command netdyn-echo runs the UDP echo server of the NetDyn
// measurement setup: it stamps and returns every probe packet it
// receives. Point netdyn-probe at it from the same or another host.
//
// Usage:
//
//	netdyn-echo [-addr host:port]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"time"

	"netprobe/internal/netdyn"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("netdyn-echo: ")
	addr := flag.String("addr", "0.0.0.0:7007", "UDP address to listen on")
	flag.Parse()

	e, err := netdyn.NewEchoer(*addr)
	if err != nil {
		log.Fatal(err)
	}
	defer e.Close()
	fmt.Printf("echoing probes on %s\n", e.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	tick := time.NewTicker(10 * time.Second)
	defer tick.Stop()
	for {
		select {
		case <-sig:
			fmt.Printf("\nechoed %d packets\n", e.Echoed())
			return
		case <-tick.C:
			fmt.Printf("echoed %d packets\n", e.Echoed())
		}
	}
}
