// Command netdyn-echo runs the UDP echo server of the NetDyn
// measurement setup: it stamps and returns every probe packet it
// receives. Point netdyn-probe at it from the same or another host.
//
// The server logs each client session (address, packets, bytes) at
// Info level as traffic arrives and again on shutdown; -quiet
// suppresses the session logging.
//
// Usage:
//
//	netdyn-echo [-addr host:port] [-quiet] [-trace events.jsonl]
//	            [-faults plan.json]
//	            [-log info] [-logfmt text|json] [-debug-addr :6060]
//
// -trace records every echoed (and dropper-discarded) probe as otrace
// JSONL events on the echo host's clock — the turnaround half of the
// probe-lifecycle schema netdyn-probe writes.
//
// -faults impairs the echo socket's replies with a deterministic
// fault-injection plan (internal/faultinject JSON), so chaos tests can
// exercise the return path independently of the forward one.
//
// SIGINT or SIGTERM shuts the server down gracefully, flushing the
// event trace and printing the session totals.
package main

import (
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"netprobe/internal/faultinject"
	"netprobe/internal/netdyn"
	"netprobe/internal/obs"
	"netprobe/internal/otrace"
	"netprobe/internal/tshist"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("netdyn-echo: ")
	var (
		addr   = flag.String("addr", "0.0.0.0:7007", "UDP address to listen on")
		quiet  = flag.Bool("quiet", false, "suppress per-session logging")
		events = flag.String("trace", "", "probe-turnaround event output file (.otr = binary wire form, else otrace JSONL); empty disables")
		faults = flag.String("faults", "",
			"fault-injection plan (JSON, see internal/faultinject) applied to echoed replies")
		obsFlags    = obs.RegisterFlags(flag.CommandLine)
		tshistFlags = tshist.RegisterFlags(flag.CommandLine)
	)
	flag.Parse()
	if _, err := tshistFlags.Setup(obs.Default, obsFlags.DebugAddr != ""); err != nil {
		log.Fatal(err)
	}
	if _, err := obsFlags.Setup(obs.Default); err != nil {
		log.Fatal(err)
	}

	var e *netdyn.Echoer
	if *faults != "" {
		plan, err := faultinject.Load(*faults)
		if err != nil {
			log.Fatal(err)
		}
		inner, err := net.ListenPacket("udp", *addr)
		if err != nil {
			log.Fatal(err)
		}
		e = netdyn.NewEchoerConn(faultinject.WrapPacketConn(inner, plan,
			faultinject.WithSeq(netdyn.PacketSeq),
			faultinject.WithRegistry(obs.Default)))
		slog.Info("fault plan loaded", "path", *faults)
	} else {
		var err error
		e, err = netdyn.NewEchoer(*addr)
		if err != nil {
			log.Fatal(err)
		}
	}
	defer e.Close()
	if *events != "" {
		w, err := otrace.CreateFile(*events)
		if err != nil {
			log.Fatal(err)
		}
		b := otrace.NewBounded(w, 4096)
		e.SetTrace(b)
		defer func() {
			b.Close() //nolint:errcheck // always nil
			if err := w.Close(); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("event trace written to %s (%d events)\n", *events, w.Events())
		}()
	}
	fmt.Printf("echoing probes on %s\n", e.Addr())

	// logSessions reports every session whose packet count changed
	// since the last report, so idle sessions are logged once and
	// active ones show their progress.
	lastPackets := make(map[string]int64)
	logSessions := func() {
		if *quiet {
			return
		}
		for _, s := range e.Sessions() {
			if lastPackets[s.Client] == s.Packets {
				continue
			}
			lastPackets[s.Client] = s.Packets
			slog.Info("session", "client", s.Client,
				"packets", s.Packets, "bytes", s.Bytes,
				"active", s.Last.Sub(s.First).Round(time.Second))
		}
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	tick := time.NewTicker(10 * time.Second)
	defer tick.Stop()
	for {
		select {
		case <-sig:
			logSessions()
			fmt.Printf("\nechoed %d packets from %d sessions\n", e.Echoed(), len(e.Sessions()))
			return
		case <-tick.C:
			logSessions()
			slog.Debug("echo totals", "echoed", e.Echoed(), "dropped", e.Dropped())
		}
	}
}
