// Command netdiag runs the network-dynamics diagnoses on a saved
// trace: route-change detection (a sustained step in the RTT
// baseline, as in [21]) and periodic-disturbance detection (the
// every-90-seconds gateway pathology of [22]), plus a time-series
// characterization of the delay process (AR order by AIC, residual
// whiteness).
//
// Usage:
//
//	netdiag trace.csv [...]
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"math"
	"time"

	"netprobe/internal/dynamics"
	"netprobe/internal/obs"
	"netprobe/internal/trace"
	"netprobe/internal/tsa"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("netdiag: ")
	checkVersion := obs.VersionFlag(flag.CommandLine)
	flag.Parse()
	checkVersion()
	if flag.NArg() == 0 {
		log.Fatal("usage: netdiag trace.csv [...]")
	}
	for _, path := range flag.Args() {
		tr, err := trace.Load(path)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("== %s\n", tr)

		switch shift, err := dynamics.DetectLevelShift(tr, 0, 0); {
		case err == nil:
			fmt.Printf("route change: baseline %.1f → %.1f ms (Δ %+.1f ms) at probe %d (t ≈ %v)\n",
				shift.BeforeMs, shift.AfterMs, shift.ShiftMs(), shift.Index, shift.At.Round(time.Second))
		case errors.Is(err, dynamics.ErrNoShift):
			fmt.Println("route change: none detected (stable baseline)")
		default:
			log.Fatal(err)
		}

		switch per, err := dynamics.DetectPeriodicity(tr, 0); {
		case err == nil:
			fmt.Printf("periodic disturbance: every %v (lag %d probes, autocorrelation %.2f)\n",
				per.Period.Round(time.Second), per.Lag, per.Correlation)
		case errors.Is(err, dynamics.ErrNoPeriodicity):
			fmt.Println("periodic disturbance: none detected")
		default:
			log.Fatal(err)
		}

		rtts := tr.RTTMillis()
		if m, err := tsa.SelectAR(rtts, 10); err == nil {
			q := tsa.LjungBox(m.Residuals(rtts), 10)
			fmt.Printf("delay process: AR(%d) by AIC, σ≈%.1f ms, Ljung–Box(10) of residuals %.1f (white ≈ 10)\n",
				m.Order(), math.Sqrt(m.Sigma2), q)
		}
	}
}
