// Command bolotsim runs simulated probing experiments on one of the
// paper's paths and writes the traces. -delta accepts a single
// interval or a comma-separated sweep; sweep jobs run concurrently on
// internal/runner's worker pool with per-job seeds derived from
// -seed, so the traces are identical at any -workers value.
//
// Usage:
//
//	bolotsim [-path inria|pitt] [-delta 50ms | -delta 8ms,20ms,50ms]
//	         [-duration 10m] [-seed 42] [-noloss] [-nocross]
//	         [-workers N] [-out trace.csv] [-trace-dir traces/]
//	         [-trace-max-bytes N] [-online] [-relay host:port]
//	         [-linger 0s]
//	         [-log info] [-logfmt text|json] [-debug-addr :6060]
//	         [-version]
//
// -trace-dir additionally records every probe's lifecycle (sent,
// enqueued per hop, dropped, echoed, rtt) as one otrace JSONL file per
// job; the files are byte-identical at any -workers value.
// -trace-max-bytes rotates each job's file into gzip segments
// (job-NNN.jsonl.gz, job-NNN-001.jsonl.gz, ...) once it would exceed N
// uncompressed bytes.
//
// -online streams every job's events through the in-process analysis
// engine (internal/online): running loss statistics, live bottleneck-μ
// estimates, and workload histograms are served as JSON at /online on
// the -debug-addr server and as online.* gauges on /metrics while the
// sweep is in flight. -linger holds the process (and the debug
// endpoints) open for the given duration after the sweep so the final
// snapshots can be scraped.
//
// -relay streams the same job-tagged events to a netdyn-relay
// collector over TCP (otrace wire framing), so a remote aggregator
// computes the identical online analysis this process would.
//
// Sweep jobs report start/finish live through the structured logger,
// and the run ends with a one-line pool summary (wall time, worker
// utilization, cancelled-job count).
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"path/filepath"
	"strings"
	"time"

	"netprobe/internal/core"
	"netprobe/internal/obs"
	"netprobe/internal/online"
	"netprobe/internal/pipestat"
	"netprobe/internal/runner"
	"netprobe/internal/source"
	"netprobe/internal/trace"
	"netprobe/internal/tshist"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("bolotsim: ")
	var (
		pathName = flag.String("path", "inria", "path to simulate: inria (Table 1) or pitt (Table 2)")
		deltas   = flag.String("delta", "50ms", "probe interval δ, or a comma-separated sweep (e.g. 8ms,20ms,50ms)")
		duration = flag.Duration("duration", 10*time.Minute, "experiment duration")
		seed     = flag.Int64("seed", 42, "root seed; per-run seeds are derived from it")
		noLoss   = flag.Bool("noloss", false, "disable random (faulty-interface) loss")
		noCross  = flag.Bool("nocross", false, "disable Internet cross traffic")
		workers  = flag.Int("workers", 0, "parallel simulation workers (0 = GOMAXPROCS)")
		out      = flag.String("out", "", "trace output file (.csv or .json); sweeps insert the δ before the extension")
		traceDir = flag.String("trace-dir", "",
			"directory for per-job probe-lifecycle event files (otrace JSONL); empty disables tracing")
		traceMax = flag.Int64("trace-max-bytes", 0,
			"rotate each job's trace into gzip segments after this many uncompressed bytes (0 = no rotation)")
		traceWire = flag.Bool("trace-wire", false,
			"write trace files in the binary wire form (job-NNN.otr, smaller and faster to re-read; supersedes -trace-max-bytes)")
		onlineOn = flag.Bool("online", false,
			"stream job events through the online analysis engine (serves /online on -debug-addr)")
		relay = flag.String("relay", "",
			"stream job events to a netdyn-relay collector at this address; empty disables")
		linger = flag.Duration("linger", 0,
			"keep the process (and -debug-addr endpoints) alive this long after the sweep")
		obsFlags    = obs.RegisterFlags(flag.CommandLine)
		tshistFlags = tshist.RegisterFlags(flag.CommandLine)
	)
	flag.Parse()
	// The online engine registers its /online debug handler, so it must
	// exist before Setup starts the -debug-addr server. The pipeline
	// monitor rides in the analyzer set, closing the online chain's
	// conservation ledger at the applied stage (internal/pipestat).
	var bus *online.Bus
	var eng *online.Engine
	if *onlineOn {
		mon := pipestat.NewMonitor(pipestat.Default.Chain("online"))
		bus = online.NewBus()
		eng = online.NewEngine(bus, 0, append(online.DefaultAnalyzers(obs.Default), mon)...)
		online.RegisterDebug(eng)
		obs.StatusSection("online", func() any {
			length, capacity := eng.Queue()
			return map[string]any{"queue_len": length, "queue_cap": capacity, "dropped": eng.Dropped()}
		})
	}
	pipestat.Default.Register()
	if _, err := tshistFlags.Setup(obs.Default, obsFlags.DebugAddr != ""); err != nil {
		log.Fatal(err)
	}
	if _, err := obsFlags.Setup(obs.Default); err != nil {
		log.Fatal(err)
	}

	preset, ok := core.PresetByName(*pathName)
	if !ok {
		log.Fatalf("unknown path %q (want inria or pitt)", *pathName)
	}

	var jobs []runner.Job
	for _, field := range strings.Split(*deltas, ",") {
		d, err := time.ParseDuration(strings.TrimSpace(field))
		if err != nil {
			log.Fatalf("bad -delta entry %q: %v", field, err)
		}
		cfg := preset.Config(d, *duration, 0)
		if *noLoss {
			for i := range cfg.Path.Hops {
				cfg.Path.Hops[i].LossProb = 0
			}
		}
		if *noCross {
			cfg.Cross = nil
		}
		jobs = append(jobs, runner.Job{
			Label:  fmt.Sprintf("%s δ=%v", preset.Name, d),
			Config: cfg,
		})
	}
	if len(jobs) == 0 {
		log.Fatal("no probe intervals given")
	}

	p := jobs[0].Config.Path
	fmt.Printf("route (%s):\n%s", p.Name, p.Traceroute())

	opts := []runner.Option{
		runner.Workers(*workers),
		runner.Metrics(obs.Default),
		runner.Progress(func(ev runner.Event) {
			switch ev.Kind {
			case runner.JobStart:
				slog.Info("job start", "label", ev.Label, "seed", ev.Seed, "worker", ev.Worker)
			case runner.JobFinish:
				if ev.Err != nil {
					slog.Error("job failed", "label", ev.Label, "err", ev.Err)
					return
				}
				slog.Info("job done", "label", ev.Label,
					"wall", ev.Wall.Round(time.Millisecond),
					"ulp", fmt.Sprintf("%.3f", ev.Stats.ULP))
			}
		}),
	}
	if *traceDir != "" {
		opts = append(opts, runner.Traces(*traceDir))
		if *traceMax > 0 {
			opts = append(opts, runner.TraceMaxBytes(*traceMax))
		}
		if *traceWire {
			opts = append(opts, runner.WireTraces())
		}
	}
	if bus != nil {
		// Produce stamps each event at the tap, counts it into the
		// online chain's ledger, and forwards to the bus; the engine-side
		// monitor closes the books at the applied stage.
		chain := pipestat.Default.Chain("online")
		chain.Dropped("bus", bus.Dropped)
		opts = append(opts, runner.Sink(chain.Produce(bus)))
	}
	var sender *source.Sender
	if *relay != "" {
		var err error
		if sender, err = source.Dial(*relay); err != nil {
			log.Fatal(err)
		}
		// The runner tags events with each job's label, so the relay's
		// analyzers bucket them exactly like a local -online run. The
		// wire branch keeps its own books: every tapped event ends up
		// sent or dropped (sticky stream errors), never lost silently.
		chain := pipestat.Default.Chain("wire")
		chain.Applied("sender", sender.Sent)
		chain.Dropped("sender", sender.Dropped)
		sender.StartHeartbeats(2 * time.Second)
		opts = append(opts, runner.Sink(chain.Produce(chain.Stage(pipestat.StageWireSent, sender))))
		slog.Info("relaying events", "to", *relay)
	}
	results, summary := runner.RunAll(context.Background(), *seed, jobs, opts...)
	if sender != nil {
		if err := sender.Close(); err != nil {
			slog.Warn("relay stream incomplete", "err", err)
		}
	}
	if eng != nil {
		bus.Close()
		eng.Wait()
		if d := eng.Dropped(); d > 0 {
			slog.Warn("online analysis sampled, not exact", "dropped", d)
		}
	}
	if err := runner.FirstErr(results); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sweep: %s\n", summary)
	for _, r := range results {
		min, _ := r.Trace.MinRTT()
		fmt.Printf("%s\nmin RTT %v, %s (%v)\n", r.Trace, min, r.Stats, r.Wall.Round(time.Millisecond))
		if *out == "" {
			continue
		}
		name := *out
		if len(results) > 1 {
			ext := filepath.Ext(name)
			name = fmt.Sprintf("%s-%v%s", strings.TrimSuffix(name, ext), jobs[r.Index].Config.Delta, ext)
		}
		if err := trace.Save(name, r.Trace); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("trace written to %s\n", name)
	}
	if *linger > 0 {
		slog.Info("lingering; final analysis stays scrapeable", "for", *linger)
		time.Sleep(*linger)
	}
}
