// Command bolotsim runs a simulated probing experiment on one of the
// paper's paths and writes the trace.
//
// Usage:
//
//	bolotsim [-path inria|pitt] [-delta 50ms] [-duration 10m]
//	         [-seed 42] [-noloss] [-nocross] [-out trace.csv]
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"netprobe/internal/clock"
	"netprobe/internal/core"
	"netprobe/internal/loss"
	"netprobe/internal/route"
	"netprobe/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("bolotsim: ")
	var (
		pathName = flag.String("path", "inria", "path to simulate: inria (Table 1) or pitt (Table 2)")
		delta    = flag.Duration("delta", 50*time.Millisecond, "probe interval δ")
		duration = flag.Duration("duration", 10*time.Minute, "experiment duration")
		seed     = flag.Int64("seed", 42, "random seed")
		noLoss   = flag.Bool("noloss", false, "disable random (faulty-interface) loss")
		noCross  = flag.Bool("nocross", false, "disable Internet cross traffic")
		out      = flag.String("out", "", "trace output file (.csv or .json)")
	)
	flag.Parse()

	var p route.Path
	var cross core.CrossConfig
	var res time.Duration
	switch *pathName {
	case "inria":
		p, cross, res = route.INRIAToUMd(), core.DefaultINRIACross(), clock.DECstationResolution
	case "pitt":
		p, cross, res = route.UMdToPitt(), core.DefaultPittCross(), clock.UMdResolution
	default:
		log.Fatalf("unknown path %q (want inria or pitt)", *pathName)
	}
	if *noLoss {
		for i := range p.Hops {
			p.Hops[i].LossProb = 0
		}
	}
	cfg := core.SimConfig{
		Path:     p,
		Delta:    *delta,
		Duration: *duration,
		ClockRes: res,
		Seed:     *seed,
	}
	if !*noCross {
		cfg.Cross = &cross
	}

	fmt.Printf("route (%s):\n%s", p.Name, p.Traceroute())
	tr, err := core.RunSim(cfg)
	if err != nil {
		log.Fatal(err)
	}
	st := loss.AnalyzeTrace(tr)
	min, _ := tr.MinRTT()
	fmt.Printf("%s\nmin RTT %v, %s\n", tr, min, st)
	if *out != "" {
		if err := trace.Save(*out, tr); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("trace written to %s\n", *out)
	}
}
