package main

import (
	"strings"
	"testing"
)

func TestParseBenchOutput(t *testing.T) {
	input := `
goos: linux
goarch: amd64
pkg: netprobe
BenchmarkSweepParallel-8   	       3	 412345678 ns/op	 1234 B/op	   56 allocs/op
BenchmarkSimEngine-8       	    1000	   1234567 ns/op	   98.5 events/op
BenchmarkSweepParallel-8   	       4	 400000000 ns/op	 1000 B/op	   50 allocs/op
some test log line
PASS
ok  	netprobe	1.234s
`
	snap, err := parse(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Benchmarks) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2: %+v", len(snap.Benchmarks), snap.Benchmarks)
	}
	// The -8 suffix is stripped and the last occurrence wins.
	sw, ok := snap.Benchmarks["BenchmarkSweepParallel"]
	if !ok {
		t.Fatalf("BenchmarkSweepParallel missing: %+v", snap.Benchmarks)
	}
	if sw.Iterations != 4 || sw.Metrics["ns/op"] != 4e8 {
		t.Errorf("SweepParallel = %+v", sw)
	}
	se := snap.Benchmarks["BenchmarkSimEngine"]
	if se.Metrics["events/op"] != 98.5 {
		t.Errorf("custom metric lost: %+v", se)
	}
	if snap.GoVersion == "" || snap.Timestamp == "" {
		t.Errorf("missing stamps: %+v", snap)
	}
}

func TestParseSkipsGarbage(t *testing.T) {
	snap, err := parse(strings.NewReader("Benchmark without numbers\nBenchmarkX-4 notanumber 5 ns/op\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Benchmarks) != 0 {
		t.Errorf("garbage parsed as benchmarks: %+v", snap.Benchmarks)
	}
}
