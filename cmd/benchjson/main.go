// Command benchjson converts `go test -bench` output on stdin into a
// machine-readable JSON benchmark snapshot on stdout: benchmark name
// → iterations plus every reported metric (ns/op, B/op, allocs/op,
// and any custom testing.B metrics). `make bench-snapshot` pipes the
// full suite through it to produce BENCH_<date>.json files that perf
// PRs diff against.
//
// Usage:
//
//	go test -bench=. -benchmem ./... | benchjson > BENCH_2026-08-05.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"netprobe/internal/obs"
)

// Result is one benchmark's parsed line.
type Result struct {
	// Iterations is the b.N the reported means were computed over.
	Iterations int64 `json:"iterations"`
	// Metrics maps unit → value, e.g. "ns/op" → 123456.
	Metrics map[string]float64 `json:"metrics"`
}

// Snapshot is the whole suite, stamped for later comparison.
type Snapshot struct {
	GoVersion  string            `json:"go_version"`
	GOOS       string            `json:"goos"`
	GOARCH     string            `json:"goarch"`
	Timestamp  string            `json:"timestamp"`
	Benchmarks map[string]Result `json:"benchmarks"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchjson: ")
	checkVersion := obs.VersionFlag(flag.CommandLine)
	flag.Parse()
	checkVersion()
	snap, err := parse(os.Stdin)
	if err != nil {
		log.Fatal(err)
	}
	if len(snap.Benchmarks) == 0 {
		log.Fatal("no benchmark lines found on stdin (run go test -bench=. | benchjson)")
	}
	out, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(string(out))
}

// parse reads go-test benchmark output: lines of the form
//
//	BenchmarkName-8   	     100	  12345 ns/op	  67 B/op	  8 allocs/op
//
// Non-benchmark lines (package headers, PASS/ok, test logs) are
// skipped. A repeated benchmark name keeps the last occurrence.
func parse(r io.Reader) (*Snapshot, error) {
	snap := &Snapshot{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
		Benchmarks: make(map[string]Result),
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 || len(fields)%2 != 0 {
			continue // malformed or a bare "Benchmark..." test log line
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		res := Result{Iterations: iters, Metrics: make(map[string]float64)}
		ok := true
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				ok = false
				break
			}
			res.Metrics[fields[i+1]] = v
		}
		if !ok || len(res.Metrics) == 0 {
			continue
		}
		// Strip the -GOMAXPROCS suffix so snapshots from machines
		// with different core counts diff cleanly.
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		snap.Benchmarks[name] = res
	}
	return snap, sc.Err()
}
