// Command lossstats computes the Section 5 loss statistics (Table 3)
// for one or more saved traces: unconditional loss probability ulp,
// conditional loss probability clp, and packet loss gap plg, plus the
// Gilbert-model fit and the burstiness verdict.
//
// Usage:
//
//	lossstats trace1.csv [trace2.csv ...]
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"netprobe/internal/fec"
	"netprobe/internal/loss"
	"netprobe/internal/obs"
	"netprobe/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("lossstats: ")
	checkVersion := obs.VersionFlag(flag.CommandLine)
	flag.Parse()
	checkVersion()
	if flag.NArg() == 0 {
		log.Fatal("usage: lossstats trace.csv [...]")
	}
	fmt.Printf("%-10s %8s %8s %8s %8s %10s %12s\n",
		"delta", "probes", "ulp", "clp", "plg", "mean run", "burst pen.")
	for _, path := range flag.Args() {
		tr, err := trace.Load(path)
		if err != nil {
			log.Fatal(err)
		}
		s := loss.AnalyzeTrace(tr)
		bp := fec.BurstPenalty(tr.LossIndicator())
		fmt.Printf("%-10v %8d %8.3f %8.3f %8.2f %10.2f %12.2f\n",
			tr.Delta.Round(time.Millisecond), s.N, s.ULP, s.CLP, s.PLG, s.MeanRun, bp)
		if g, err := loss.FitGilbert(tr.LossIndicator()); err == nil {
			fmt.Printf("           gilbert: p01=%.3f p11=%.3f stationary=%.3f mean burst=%.2f\n",
				g.P01, g.P11, g.StationaryLoss(), g.MeanBurst())
		}
	}
}
