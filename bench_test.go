// Benchmarks regenerating every table and figure of the paper, one
// bench per experiment (see DESIGN.md §4), plus ablation benches for
// the design choices DESIGN.md §6 calls out and micro-benchmarks of
// the simulation engine. Shape metrics are attached to each bench via
// b.ReportMetric, so
//
//	go test -bench=. -benchmem
//
// both times the harness and prints the reproduced quantities.
//
// Reported shape metrics always come from the fixed first seed (i==0):
// later iterations vary the seed so the timing stays honest, but the
// reported number must not depend on b.N, or the perf gate would diff
// different seeds' statistics across -benchtime settings and flag
// phantom regressions on stochastic quantities like the δ=500 ms ulp.
package netprobe

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"netprobe/internal/core"
	"netprobe/internal/fec"
	"netprobe/internal/loss"
	"netprobe/internal/phase"
	"netprobe/internal/queue"
	"netprobe/internal/route"
	"netprobe/internal/runner"
	"netprobe/internal/sim"
	"netprobe/internal/stats"
	"netprobe/internal/traffic"
	"netprobe/internal/workload"
)

// benchDur keeps each benchmark iteration to one simulated minute so
// the full suite runs in seconds while preserving every effect.
const benchDur = time.Minute

func runINRIA(b *testing.B, delta time.Duration, seed int64) *core.Trace {
	b.Helper()
	tr, err := core.INRIAUMd(delta, benchDur, seed)
	if err != nil {
		b.Fatal(err)
	}
	return tr
}

func runPitt(b *testing.B, delta time.Duration, seed int64) *core.Trace {
	b.Helper()
	tr, err := core.UMdPitt(delta, benchDur, seed)
	if err != nil {
		b.Fatal(err)
	}
	return tr
}

// BenchmarkTable1Route regenerates Table 1: the INRIA→UMd route and
// its traceroute rendering.
func BenchmarkTable1Route(b *testing.B) {
	for i := 0; i < b.N; i++ {
		p := route.INRIAToUMd()
		_ = p.Traceroute()
		if _, bw := p.Bottleneck(); bw != 128_000 {
			b.Fatal("wrong bottleneck")
		}
	}
}

// BenchmarkTable2Route regenerates Table 2: the UMd→Pittsburgh route.
func BenchmarkTable2Route(b *testing.B) {
	for i := 0; i < b.N; i++ {
		p := route.UMdToPitt()
		_ = p.Traceroute()
		if len(p.Hops) != 14 {
			b.Fatal("wrong hop count")
		}
	}
}

// BenchmarkFigure1TimeSeries regenerates Figure 1: the rtt_n series at
// δ=50 ms, reporting the loss rate the paper quotes as 9%.
func BenchmarkFigure1TimeSeries(b *testing.B) {
	var lossRate float64
	for i := 0; i < b.N; i++ {
		tr := runINRIA(b, 50*time.Millisecond, int64(i))
		series := tr.RTTSeries()
		if len(series) == 0 {
			b.Fatal("empty series")
		}
		if i == 0 {
			lossRate = tr.LossRate()
		}
	}
	b.ReportMetric(lossRate, "lossRate")
}

// BenchmarkFigure2PhasePlot regenerates Figure 2: the δ=50 ms phase
// plot and its bottleneck estimate (paper: D≈140 ms, μ≈130 kb/s).
func BenchmarkFigure2PhasePlot(b *testing.B) {
	var mu, d float64
	for i := 0; i < b.N; i++ {
		tr := runINRIA(b, 50*time.Millisecond, int64(i))
		est, err := phase.EstimateBottleneck(tr, 0)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			mu, d = est.BottleneckBps, est.FixedDelayMs
		}
	}
	b.ReportMetric(mu/1000, "kbps")
	b.ReportMetric(d, "D_ms")
}

// BenchmarkFigure4PhasePlot regenerates Figure 4: δ=500 ms, where the
// compression line disappears and points scatter around the diagonal.
func BenchmarkFigure4PhasePlot(b *testing.B) {
	var diag float64
	for i := 0; i < b.N; i++ {
		tr, err := core.INRIAUMd(500*time.Millisecond, 5*time.Minute, int64(i))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := phase.EstimateBottleneck(tr, 0); err == nil {
			b.Fatal("compression line should be absent at δ=500 ms")
		}
		if i == 0 {
			diag = phase.New(tr).DiagonalFraction(50)
		}
	}
	b.ReportMetric(diag, "diagFrac")
}

// BenchmarkFigure5PhasePlot regenerates Figure 5: UMd–Pitt at δ=8 ms,
// compression against the line rtt_{n+1} = rtt_n − 8 under a 3 ms
// clock.
func BenchmarkFigure5PhasePlot(b *testing.B) {
	var onLine float64
	for i := 0; i < b.N; i++ {
		tr := runPitt(b, 8*time.Millisecond, int64(i))
		p := phase.New(tr)
		if len(p.Points) == 0 {
			b.Fatal("no phase points")
		}
		if i == 0 {
			onLine = float64(p.OnLine(-8, 1.5)) / float64(len(p.Points))
		}
	}
	b.ReportMetric(onLine, "onLineFrac")
}

// BenchmarkFigure6PhasePlot regenerates Figure 6: UMd–Pitt at δ=50 ms,
// diagonal scatter.
func BenchmarkFigure6PhasePlot(b *testing.B) {
	var diag float64
	for i := 0; i < b.N; i++ {
		tr := runPitt(b, 50*time.Millisecond, int64(i))
		if i == 0 {
			diag = phase.New(tr).DiagonalFraction(5)
		}
	}
	b.ReportMetric(diag, "diagFrac")
}

// BenchmarkFigure8WorkloadDist regenerates Figure 8: the distribution
// of w_{n+1}−w_n+δ at δ=20 ms and the bulk-packet size read from its
// peaks (paper: ≈488 bytes).
func BenchmarkFigure8WorkloadDist(b *testing.B) {
	// The reported statistic comes from the fixed first seed so it is
	// identical at any -benchtime (b.N only affects timing); iterations
	// past the first vary the seed to keep the work realistic.
	var bulk float64
	for i := 0; i < b.N; i++ {
		tr := runINRIA(b, 20*time.Millisecond, int64(i)+40)
		a, err := workload.Analyze(tr, float64(tr.BottleneckBps), 1.5)
		if err != nil {
			b.Fatal(err)
		}
		if v, err := a.InferredBulkBytes(); err == nil && i == 0 {
			bulk = v
		}
	}
	b.ReportMetric(bulk, "bulkBytes")
}

// BenchmarkFigure9WorkloadDist regenerates Figure 9: the same
// distribution at δ=100 ms, whose compression peak shrinks.
func BenchmarkFigure9WorkloadDist(b *testing.B) {
	var frac float64
	for i := 0; i < b.N; i++ {
		tr := runINRIA(b, 100*time.Millisecond, int64(i))
		if v := workload.CompressionFraction(tr, float64(tr.BottleneckBps), 3); i == 0 {
			frac = v // fixed seed 0: deterministic at any -benchtime
		}
	}
	b.ReportMetric(frac, "comprFrac")
}

// BenchmarkTable3Loss regenerates Table 3: the ulp/clp/plg sweep over
// all six probe intervals.
func BenchmarkTable3Loss(b *testing.B) {
	var ulp8, ulp500 float64
	for i := 0; i < b.N; i++ {
		for _, d := range core.PaperDeltas {
			tr := runINRIA(b, d, int64(i))
			s := loss.AnalyzeTrace(tr)
			if i != 0 {
				continue // report the fixed seed-0 sweep: deterministic at any -benchtime
			}
			switch d {
			case 8 * time.Millisecond:
				ulp8 = s.ULP
			case 500 * time.Millisecond:
				ulp500 = s.ULP
			}
		}
	}
	b.ReportMetric(ulp8, "ulp_8ms")
	b.ReportMetric(ulp500, "ulp_500ms")
}

// BenchmarkFECRecovery regenerates the Section 5 implication: the
// residual loss of repetition-based recovery relative to the
// random-loss baseline.
func BenchmarkFECRecovery(b *testing.B) {
	var penalty float64
	for i := 0; i < b.N; i++ {
		tr := runINRIA(b, 100*time.Millisecond, int64(i))
		if v := fec.BurstPenalty(tr.LossIndicator()); i == 0 {
			penalty = v // fixed seed 0: deterministic at any -benchtime
		}
	}
	b.ReportMetric(penalty, "burstPenalty")
}

// BenchmarkAnalyticModel runs the Section 6 batch-deterministic model
// (both Monte Carlo and the numeric stationary solution).
func BenchmarkAnalyticModel(b *testing.B) {
	// Offered load ≈ 0.79: stable, like the measured path.
	pmf := map[float64]float64{0: 0.7, 4096: 0.25, 8192: 0.05}
	m := &queue.BatchDeterministic{
		Mu: 128_000, Delta: 0.02, P: 576,
		Batch: func(rng *rand.Rand) float64 {
			u := rng.Float64()
			switch {
			case u < 0.7:
				return 0
			case u < 0.95:
				return 4096
			default:
				return 8192
			}
		},
	}
	var mean float64
	for i := 0; i < b.N; i++ {
		res := m.Run(50_000, int64(i))
		pi := m.StationaryWait(0.002, 0.4, pmf, 4, 120)
		mean = 0
		for j, p := range pi {
			mean += float64(j) * 0.002 * p
		}
		_ = res
	}
	b.ReportMetric(mean*1000, "meanWait_ms")
}

// --- δ-sweep orchestration benches (internal/runner) ---

// runSweep executes the Table 3 δ-sweep on the given worker count and
// checks the traces are present.
func runSweep(b *testing.B, seed int64, workers int) {
	b.Helper()
	jobs := runner.DeltaSweep(core.INRIAPreset(), core.PaperDeltas, benchDur)
	results := runner.Run(context.Background(), seed, jobs, runner.Workers(workers))
	if err := runner.FirstErr(results); err != nil {
		b.Fatal(err)
	}
	for _, r := range results {
		if r.Trace == nil || r.Trace.Len() == 0 {
			b.Fatalf("job %q returned no trace", r.Label)
		}
	}
}

// BenchmarkSweepSequential is the baseline: the six-δ Table 3 sweep on
// a single worker — the shape of the repository's original run loops.
func BenchmarkSweepSequential(b *testing.B) {
	for i := 0; i < b.N; i++ {
		runSweep(b, int64(i), 1)
	}
}

// BenchmarkSweepParallel runs the identical sweep on a GOMAXPROCS
// pool. On ≥2 cores it completes measurably faster than
// BenchmarkSweepSequential while producing byte-identical traces
// (internal/runner's determinism guarantee, asserted in
// TestSweepDeterministicAcrossWorkerCounts).
func BenchmarkSweepParallel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		runSweep(b, int64(i), 0)
	}
}

// --- Ablation benches (DESIGN.md §6) ---

func ablationPath(mutate func(*route.Path)) core.SimConfig {
	cfg := core.INRIAPreset().Config(50*time.Millisecond, benchDur, 0)
	cfg.ClockRes = 0 // the original ablation harness measured with an exact clock
	if mutate != nil {
		mutate(&cfg.Path)
	}
	return cfg
}

// BenchmarkAblationInfiniteBuffer removes the finite bottleneck buffer:
// overflow losses vanish (only random loss remains) and delays grow.
func BenchmarkAblationInfiniteBuffer(b *testing.B) {
	var lossRate float64
	for i := 0; i < b.N; i++ {
		cfg := ablationPath(func(p *route.Path) {
			for j := range p.Hops {
				p.Hops[j].Buffer = 1 << 20
			}
		})
		cfg.Seed = int64(i)
		tr, err := core.RunSim(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			lossRate = tr.LossRate()
		}
	}
	b.ReportMetric(lossRate, "lossRate")
}

// BenchmarkAblationNoRandomLoss removes the faulty-interface loss: the
// Table 3 floor drops to pure overflow loss.
func BenchmarkAblationNoRandomLoss(b *testing.B) {
	var lossRate float64
	for i := 0; i < b.N; i++ {
		cfg := ablationPath(func(p *route.Path) {
			for j := range p.Hops {
				p.Hops[j].LossProb = 0
			}
		})
		cfg.Seed = int64(i)
		tr, err := core.RunSim(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			lossRate = tr.LossRate()
		}
	}
	b.ReportMetric(lossRate, "lossRate")
}

// BenchmarkAblationBulkOnly removes interactive traffic: the workload
// distribution collapses onto the FTP-multiple peaks.
func BenchmarkAblationBulkOnly(b *testing.B) {
	var peaks float64
	for i := 0; i < b.N; i++ {
		cfg := core.INRIAPreset().Config(20*time.Millisecond, benchDur, int64(i))
		cfg.ClockRes = 0
		cfg.Cross.InteractiveGap = 0
		cfg.Cross.ReturnGap = 0
		tr, err := core.RunSim(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if a, err := workload.Analyze(tr, float64(tr.BottleneckBps), 1.5); err == nil && i == 0 {
			peaks = float64(len(a.Peaks))
		}
	}
	b.ReportMetric(peaks, "peaks")
}

// BenchmarkAblationInteractiveOnly removes bulk traffic: compression
// nearly disappears and the distribution concentrates at δ.
func BenchmarkAblationInteractiveOnly(b *testing.B) {
	var frac float64
	for i := 0; i < b.N; i++ {
		cfg := core.INRIAPreset().Config(20*time.Millisecond, benchDur, int64(i))
		cfg.ClockRes = 0
		cfg.Cross.NBulk = 0
		tr, err := core.RunSim(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			frac = workload.CompressionFraction(tr, float64(tr.BottleneckBps), 3)
		}
	}
	b.ReportMetric(frac, "comprFrac")
}

// BenchmarkAblationNoClockQuantization runs Figure 2 with an exact
// clock: the bottleneck estimate tightens onto the true 128 kb/s.
func BenchmarkAblationNoClockQuantization(b *testing.B) {
	var mu float64
	for i := 0; i < b.N; i++ {
		cfg := core.INRIAPreset().Config(50*time.Millisecond, benchDur, int64(i))
		cfg.ClockRes = 0 // the ablation: no clock quantization
		tr, err := core.RunSim(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if est, err := phase.EstimateBottleneck(tr, 0); err == nil && i == 0 {
			mu = est.BottleneckBps
		}
	}
	b.ReportMetric(mu/1000, "kbps")
}

// --- Engine micro-benchmarks ---

// BenchmarkSimEngine measures raw event throughput of the simulator on
// a loaded M/D/1-like queue.
func BenchmarkSimEngine(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := sim.NewScheduler()
		var f sim.Factory
		sink := sim.NewSink(s, nil)
		q := sim.NewQueue(s, "q", 1_000_000, 1000, sink)
		traffic.NewPoisson(s, &f, "load", 125, 1200*time.Microsecond, time.Second, int64(i), q).Start()
		s.Run(2 * time.Second)
	}
}

// BenchmarkLindley measures the recurrence kernel.
func BenchmarkLindley(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	svc := make([]float64, 10_000)
	gap := make([]float64, 10_000)
	for i := range svc {
		svc[i] = rng.Float64()
		gap[i] = rng.Float64() * 1.2
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = queue.Waits(svc, gap)
	}
}

// BenchmarkFFT measures the periodogram path used in spectral
// analysis.
func BenchmarkFFT(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	xs := make([]float64, 4096)
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = stats.Periodogram(xs)
	}
}

// BenchmarkPhaseEstimate measures the Section 4 analysis on a fixed
// trace.
func BenchmarkPhaseEstimate(b *testing.B) {
	tr, err := core.INRIAUMd(20*time.Millisecond, benchDur, 42)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := phase.EstimateBottleneck(tr, 0); err != nil {
			b.Fatal(err)
		}
	}
}
