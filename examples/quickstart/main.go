// Quickstart: simulate the paper's canonical experiment — probing the
// INRIA → University of Maryland path at δ = 50 ms — and run the full
// Section 4/5 analysis on the result: phase plot, bottleneck
// estimation, and loss statistics.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"netprobe/internal/core"
	"netprobe/internal/loss"
	"netprobe/internal/phase"
	"netprobe/internal/plot"
)

func main() {
	log.SetFlags(0)

	// 1. Collect a trace: 2 simulated minutes of 32-byte UDP probes
	//    every 50 ms over the Table 1 path, with the default
	//    bulk+interactive cross traffic and the DECstation clock.
	tr, err := core.INRIAUMd(50*time.Millisecond, 2*time.Minute, 1993)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(tr)

	// 2. Loss analysis (Section 5).
	ls := loss.AnalyzeTrace(tr)
	fmt.Printf("loss: %s\n", ls)
	fmt.Printf("essentially random? %v\n\n", ls.IsEssentiallyRandom(0.45))

	// 3. Phase-plot analysis (Section 4): recover the fixed delay D
	//    and the bottleneck bandwidth μ from the compression line.
	est, err := phase.EstimateBottleneck(tr, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("phase-plot analysis: %s\n", est)
	fmt.Printf("true bottleneck: %d b/s\n\n", tr.BottleneckBps)

	// 4. Render the phase plot of the first 800 probes (Figure 2).
	p := phase.New(tr.Slice(0, 800))
	var xs, ys []float64
	for _, pt := range p.Points {
		xs = append(xs, pt.X)
		ys = append(ys, pt.Y)
	}
	fmt.Println("phase plot (x = rtt_n, y = rtt_n+1, ms); '-' marks the compression line:")
	fmt.Print(plot.Scatter(xs, ys, 72, 24,
		plot.RefLine{Slope: 1, Intercept: 0, Ch: '\\'},
		plot.RefLine{Slope: 1, Intercept: -est.InterceptMs, Ch: '-'},
	))
}
