// Buffer dimensioning example: one of the motivations the paper opens
// with — understanding delay/loss behavior matters "for the
// dimensioning of buffers and link capacity". This example sweeps the
// transatlantic bottleneck's buffer size, measures probe loss and
// delay on each configuration, compares against the M/M/1/K blocking
// formula, and reads off the loss-versus-delay trade-off a network
// operator would use to size the queue. The five configurations are
// independent jobs run concurrently by internal/runner.
//
// Run with:
//
//	go run ./examples/dimensioning
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"netprobe/internal/core"
	"netprobe/internal/queue"
	"netprobe/internal/runner"
	"netprobe/internal/stats"
)

func main() {
	log.SetFlags(0)

	buffers := []int{4, 8, 16, 32, 64}
	preset := core.INRIAPreset()
	var jobs []runner.Job
	for _, k := range buffers {
		cfg := preset.Config(50*time.Millisecond, 5*time.Minute, 0)
		for i := range cfg.Path.Hops {
			cfg.Path.Hops[i].LossProb = 0 // isolate overflow loss
		}
		cfg.Path.Hops[3].Buffer = k
		jobs = append(jobs, runner.Job{
			Label:  fmt.Sprintf("K=%d", k),
			Config: cfg,
		})
	}
	results := runner.Run(context.Background(), 12, jobs)
	if err := runner.FirstErr(results); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%8s %10s %12s %12s %14s\n",
		"buffer", "loss", "median RTT", "p99 RTT", "M/M/1/K loss")
	for i, r := range results {
		k := buffers[i]
		rtts := r.Trace.RTTMillis()
		med := stats.Quantile(rtts, 0.5)
		p99 := stats.Quantile(rtts, 0.99)
		// Reference: M/M/1/K at the measured total utilization
		// (probes ≈9% + cross traffic ≈60%).
		ref := queue.MM1KLossProbability(0.70, k+1)
		fmt.Printf("%8d %9.2f%% %9.1f ms %9.1f ms %13.2f%%\n",
			k, 100*r.Trace.LossRate(), med, p99, 100*ref)
	}
	fmt.Println("\nlarger buffers trade loss for delay: overflow loss falls with K while")
	fmt.Println("the delay tail grows with the extra queueing room. Note how much more")
	fmt.Println("slowly the measured loss decays than the Poisson (M/M/1/K) formula")
	fmt.Println("predicts: the bulk-transfer bursts arrive together, so buffer provisioning")
	fmt.Println("based on Poisson models badly undersizes the queue — the burstiness")
	fmt.Println("the paper's probes are designed to expose.")
}
