// Buffer dimensioning example: one of the motivations the paper opens
// with — understanding delay/loss behavior matters "for the
// dimensioning of buffers and link capacity". This example sweeps the
// transatlantic bottleneck's buffer size, measures probe loss and
// delay on each configuration, compares against the M/M/1/K blocking
// formula, and reads off the loss-versus-delay trade-off a network
// operator would use to size the queue.
//
// Run with:
//
//	go run ./examples/dimensioning
package main

import (
	"fmt"
	"log"
	"time"

	"netprobe/internal/core"
	"netprobe/internal/queue"
	"netprobe/internal/route"
	"netprobe/internal/stats"
)

func main() {
	log.SetFlags(0)

	fmt.Printf("%8s %10s %12s %12s %14s\n",
		"buffer", "loss", "median RTT", "p99 RTT", "M/M/1/K loss")
	for _, k := range []int{4, 8, 16, 32, 64} {
		p := route.INRIAToUMd()
		for i := range p.Hops {
			p.Hops[i].LossProb = 0 // isolate overflow loss
		}
		p.Hops[3].Buffer = k
		cross := core.DefaultINRIACross()
		tr, err := core.RunSim(core.SimConfig{
			Path:     p,
			Delta:    50 * time.Millisecond,
			Duration: 5 * time.Minute,
			Seed:     12,
			Cross:    &cross,
		})
		if err != nil {
			log.Fatal(err)
		}
		rtts := tr.RTTMillis()
		med := stats.Quantile(rtts, 0.5)
		p99 := stats.Quantile(rtts, 0.99)
		// Reference: M/M/1/K at the measured total utilization
		// (probes ≈9% + cross traffic ≈60%).
		ref := queue.MM1KLossProbability(0.70, k+1)
		fmt.Printf("%8d %9.2f%% %9.1f ms %9.1f ms %13.2f%%\n",
			k, 100*tr.LossRate(), med, p99, 100*ref)
	}
	fmt.Println("\nlarger buffers trade loss for delay: overflow loss falls with K while")
	fmt.Println("the delay tail grows with the extra queueing room. Note how much more")
	fmt.Println("slowly the measured loss decays than the Poisson (M/M/1/K) formula")
	fmt.Println("predicts: the bulk-transfer bursts arrive together, so buffer provisioning")
	fmt.Println("based on Poisson models badly undersizes the queue — the burstiness")
	fmt.Println("the paper's probes are designed to expose.")
}
