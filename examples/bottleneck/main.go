// Bottleneck discovery example: treat a path's bandwidth as unknown
// and recover it purely from probe round-trip times, the way Section 4
// of the paper reads 128 kb/s off the Figure 2 phase plot. The example
// sweeps several "mystery" paths with different bottlenecks, picks a
// suitable probe interval for each, and compares the phase-plot
// estimate against the truth.
//
// Run with:
//
//	go run ./examples/bottleneck
package main

import (
	"fmt"
	"log"
	"time"

	"netprobe/internal/capacity"
	"netprobe/internal/core"
	"netprobe/internal/phase"
	"netprobe/internal/route"
)

// mysteryPath builds a 6-hop path whose middle link is the bottleneck.
func mysteryPath(name string, bottleneckBps int64) route.Path {
	ms := func(d float64) time.Duration { return time.Duration(d * float64(time.Millisecond)) }
	return route.Path{
		Name: name,
		Hops: []route.Hop{
			{Name: "src-lan", RateBps: 10_000_000, Prop: ms(0.5), Buffer: 64},
			{Name: "src-gw", RateBps: 2_048_000, Prop: ms(2), Buffer: 40},
			{Name: "long-haul", RateBps: bottleneckBps, Prop: ms(30), Buffer: 20},
			{Name: "backbone", RateBps: 1_544_000, Prop: ms(5), Buffer: 40},
			{Name: "dst-gw", RateBps: 1_544_000, Prop: ms(2), Buffer: 40},
			{Name: "dst-lan", RateBps: 10_000_000, Prop: ms(0.5), Buffer: 64},
		},
	}
}

func main() {
	log.SetFlags(0)
	fmt.Printf("%-10s %12s %14s %8s %14s %8s\n",
		"path", "true μ", "phase-plot μ", "error", "packet-pair μ", "error")
	for _, tc := range []struct {
		bps   int64
		delta time.Duration
	}{
		{64_000, 50 * time.Millisecond},
		{128_000, 20 * time.Millisecond},
		{256_000, 10 * time.Millisecond},
		{512_000, 5 * time.Millisecond},
	} {
		p := mysteryPath(fmt.Sprintf("%dk", tc.bps/1000), tc.bps)
		// Cross traffic scaled to ≈60% of the bottleneck: bulk
		// windows of 2×512-byte packets, ACK-clocked.
		perSource := 2 * 512 * 8 / 0.30 // b/s at idle mean 0.3 s
		n := int(0.6 * float64(tc.bps) / perSource)
		if n < 1 {
			n = 1
		}
		cross := core.CrossConfig{
			NBulk:           n,
			BulkSize:        512,
			BulkAccessBps:   2_048_000,
			BulkIdleMean:    0.30,
			BulkTrainMean:   2,
			InteractiveSize: 64,
			InteractiveGap:  200 * time.Millisecond,
		}
		tr, err := core.RunSim(core.SimConfig{
			Path:     p,
			Delta:    tc.delta,
			Duration: 4 * time.Minute,
			Seed:     7,
			Cross:    &cross,
		})
		if err != nil {
			log.Fatal(err)
		}
		est, err := phase.EstimateBottleneck(tr, 0)
		if err != nil {
			fmt.Printf("%-10s %12d %14s %8s\n", p.Name, tc.bps, "n/a", err)
			continue
		}
		errPct := 100 * (est.BottleneckBps - float64(tc.bps)) / float64(tc.bps)

		// Second opinion: the packet-pair method, a direct probe of
		// the same P/μ spacing the phase plot reads statistically.
		pairTr, err := core.RunSim(core.SimConfig{
			Path:      p,
			Delta:     200 * time.Millisecond,
			SendTimes: capacity.PairSchedule(600, 200*time.Millisecond, time.Millisecond/2),
			Seed:      7,
			Cross:     &cross,
		})
		if err != nil {
			log.Fatal(err)
		}
		pairEst, err := capacity.FromPairs(pairTr, 0)
		if err != nil {
			log.Fatal(err)
		}
		pairErr := 100 * (pairEst.BottleneckBps - float64(tc.bps)) / float64(tc.bps)
		fmt.Printf("%-10s %12d %14.0f %7.1f%% %14.0f %7.1f%%\n",
			p.Name, tc.bps, est.BottleneckBps, errPct, pairEst.BottleneckBps, pairErr)
	}
	fmt.Println("\n(phase-plot: δ − P/μ read off the compression line; packet-pair: modal return spacing of back-to-back probes)")
}
