// UDP echo example: run the real NetDyn tool against a local echo
// server — the same measurement code path the paper used across the
// Atlantic, here exercised over the loopback interface. Point the
// prober at a remote netdyn-echo instance to measure a real path.
//
// Run with:
//
//	go run ./examples/udpecho
package main

import (
	"fmt"
	"log"
	"time"

	"netprobe/internal/fec"
	"netprobe/internal/loss"
	"netprobe/internal/netdyn"
	"netprobe/internal/stats"
)

func main() {
	log.SetFlags(0)

	// 1. Start the echo host (the paper's "intermediate host").
	echo, err := netdyn.NewEchoer("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer echo.Close()
	fmt.Printf("echo host on %s\n", echo.Addr())

	// Make the path lossy so the loss analysis has something to see:
	// drop 10% of probes pseudo-randomly (seq hash), emulating the
	// paper's faulty SURAnet interfaces.
	echo.SetDropper(func(seq uint32) bool { return (seq*2654435761)%10 == 0 })

	// 2. Probe it: 2000 probes of 32 bytes, 5 ms apart, measured with
	//    an emulated 3.906 ms DECstation clock.
	tr, err := netdyn.Probe(netdyn.ProbeConfig{
		Target:   echo.Addr().String(),
		Delta:    5 * time.Millisecond,
		Count:    2000,
		ClockRes: time.Second / 256,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(tr)

	// 3. Analyze: delay summary, loss behaviour, and what it means
	//    for an audio application (Section 5).
	if sum, err := stats.Summarize(tr.RTTMillis()); err == nil {
		fmt.Printf("rtt: min %.3f ms, median %.3f ms, max %.3f ms\n", sum.Min, sum.Median, sum.Max)
	}
	ls := loss.AnalyzeTrace(tr)
	fmt.Printf("loss: %s\n", ls)
	rep := fec.Repetition(tr.LossIndicator())
	fmt.Printf("repetition recovery: %s\n", rep)
	fmt.Printf("random-loss baseline: %.4f — losses %s\n",
		fec.RandomResidual(ls.ULP),
		map[bool]string{true: "are essentially random; open-loop FEC is adequate", false: "are bursty; prefer closed-loop (ARQ) schemes"}[ls.IsEssentiallyRandom(0.45)])
}
