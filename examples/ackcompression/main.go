// ACK compression example: the paper names its central observation
// "probe compression because of its similarity with the phenomenon of
// ACK compression which has been observed in simulations [29] and in
// measurements on the NSFNET [18]". This example reproduces the
// original phenomenon with real window-based transports over the
// simulator: a TCP transfer whose ACKs share the reverse bottleneck
// with another transfer's data sees its ACKs arrive in back-to-back
// bursts — and the same measurement (inter-arrival clustering at the
// service time) identifies both phenomena.
//
// Run with:
//
//	go run ./examples/ackcompression
package main

import (
	"fmt"
	"log"
	"time"

	"netprobe/internal/sim"
	"netprobe/internal/stats"
	"netprobe/internal/tcp"
)

func main() {
	log.SetFlags(0)

	const (
		rate   = 128_000 // the transatlantic link
		buffer = 20
		prop   = 35 * time.Millisecond
		total  = 1500
	)
	dataSvc := time.Duration(512 * 8 * int64(time.Second) / rate)

	run := func(twoWay bool) (float64, tcp.Stats) {
		sched := sim.NewScheduler()
		var f sim.Factory
		d := tcp.NewDumbbell(sched, rate, buffer, prop)
		a := tcp.NewConn(sched, &f, "A", tcp.Options{Total: total})
		d.AttachForward(a)
		a.Start(0)
		if twoWay {
			b := tcp.NewConn(sched, &f, "B", tcp.Options{Total: total})
			d.AttachReverse(b)
			b.Start(0)
		}
		sched.Run(30 * time.Minute)
		return tcp.CompressionFraction(a.AckArrivalTimes(), dataSvc), a.Stats()
	}

	fmt.Printf("bottleneck %d b/s, data service time %v\n\n", rate, dataSvc)

	one, st1 := run(false)
	fmt.Printf("one-way traffic:  connection A alone\n")
	fmt.Printf("  delivered %d, retransmits %d, srtt %v\n", st1.Delivered, st1.Retransmits, st1.SRTT.Round(time.Millisecond))
	fmt.Printf("  ACK compression fraction: %.1f%% (gaps < half a data service time)\n\n", 100*one)

	two, st2 := run(true)
	fmt.Printf("two-way traffic:  connection B sends data over the reverse path\n")
	fmt.Printf("  delivered %d, retransmits %d, srtt %v\n", st2.Delivered, st2.Retransmits, st2.SRTT.Round(time.Millisecond))
	fmt.Printf("  ACK compression fraction: %.1f%%\n\n", 100*two)

	// The same clustering is visible in the ACK inter-arrival
	// histogram: a spike near the ACK service time (compressed) next
	// to the mass at the data service time (ACK-clocked).
	gaps := func(times []time.Duration) []float64 {
		var out []float64
		for i := 1; i < len(times); i++ {
			out = append(out, float64(times[i]-times[i-1])/float64(time.Millisecond))
		}
		return out
	}
	sched := sim.NewScheduler()
	var f sim.Factory
	d := tcp.NewDumbbell(sched, rate, buffer, prop)
	a := tcp.NewConn(sched, &f, "A", tcp.Options{Total: total})
	b := tcp.NewConn(sched, &f, "B", tcp.Options{Total: total})
	d.AttachForward(a)
	d.AttachReverse(b)
	a.Start(0)
	b.Start(0)
	sched.Run(30 * time.Minute)
	g := gaps(a.AckArrivalTimes())
	h := stats.NewHistogram(0, 80, 2)
	h.AddAll(g)
	fmt.Println("ACK inter-arrival distribution under two-way traffic (ms):")
	for i, c := range h.Counts {
		if c > h.MaxCount()/20 {
			fmt.Printf("%5.0f ms %6d\n", h.BinCenter(i), c)
		}
	}
	fmt.Printf("\nthe paper's probe compression is this same signature, measured with %d-byte probes instead of ACKs\n", 72)
}
