// Audio playout example: the Section 5 application. An Internet audio
// tool sends a packet every 100 ms (within the paper's 22.5–125 ms
// range); this example probes the simulated INRIA–UMd path at that
// rate and answers the two questions a codec designer asks:
//
//  1. How much playout buffering does the delay distribution demand?
//     (the paper: "the shape of the delay distribution is crucial for
//     the proper sizing of playback buffers")
//  2. Is open-loop error control (FEC / repeating the last packet)
//     enough, or are losses bursty enough to need ARQ?
//
// Run with:
//
//	go run ./examples/audioplayout
package main

import (
	"fmt"
	"log"
	"time"

	"netprobe/internal/audio"
	"netprobe/internal/core"
	"netprobe/internal/fec"
	"netprobe/internal/loss"
	"netprobe/internal/plot"
	"netprobe/internal/stats"
)

func main() {
	log.SetFlags(0)

	const delta = 100 * time.Millisecond // one audio packet per 100 ms
	tr, err := core.INRIAUMd(delta, 5*time.Minute, 27)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(tr)

	// Delay distribution and playout sizing.
	rtts := tr.RTTMillis()
	sum, err := stats.Summarize(rtts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ndelay: min %.1f ms, median %.1f ms, mean %.1f ms, max %.1f ms\n",
		sum.Min, sum.Median, sum.Mean, sum.Max)
	for _, late := range []float64{0.05, 0.01, 0.001} {
		fmt.Printf("playout buffer for ≤%.1f%% late packets: %6.1f ms beyond minimum\n",
			100*late, fec.PlayoutDelay(rtts, late))
	}

	// The delay histogram whose shape drives those numbers.
	h := stats.NewHistogram(sum.Min, sum.Max+1, 10)
	h.AddAll(rtts)
	fmt.Println("\ndelay distribution (10 ms bins):")
	fmt.Print(plot.Histogram(h, 40))

	// Loss behaviour and the error-control decision.
	ls := loss.AnalyzeTrace(tr)
	lost := tr.LossIndicator()
	fmt.Printf("\nloss: %s\n", ls)
	rep := fec.Repetition(lost)
	blk := fec.BlockFEC(lost, 5, 4)
	arq := fec.ARQ(lost, 27)
	fmt.Printf("repetition (replay previous packet): residual %.4f (random baseline %.4f)\n",
		rep.ResidualLossRate, fec.RandomResidual(ls.ULP))
	fmt.Printf("block FEC(5,4): residual %.4f at 25%% bandwidth overhead\n", blk.ResidualLossRate)
	fmt.Printf("ARQ: mean delivery delay %.2f RTT — %.0f ms of added latency at this path's RTT\n",
		arq.MeanDelayRTT, arq.MeanDelayRTT*sum.Median)
	if ls.IsEssentiallyRandom(0.45) {
		fmt.Println("\nverdict: losses are essentially random — open-loop FEC/repetition is adequate (the paper's conclusion)")
	} else {
		fmt.Println("\nverdict: losses are bursty — prefer closed-loop (ARQ) recovery")
	}

	// Playout policies: what an actual receiver would do with this
	// delay process, re-estimating at talkspurt boundaries.
	fmt.Printf("\nplayout policies (talkspurts of 100 packets):\n")
	fmt.Printf("%-22s %10s %12s\n", "policy", "late rate", "mean offset")
	for _, r := range audio.Compare(tr, 100,
		audio.Fixed{OffsetMs: sum.Min + 20},
		audio.Fixed{OffsetMs: sum.Max},
		audio.Quantile{P: 0.99},
		audio.Adaptive{},
	) {
		fmt.Printf("%-22s %9.1f%% %10.0f ms\n", r.Policy, 100*r.LateRate, r.MeanOffsetMs)
	}
}
