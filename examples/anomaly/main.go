// Anomaly diagnosis example: the companion studies [21, 22] used the
// same probing tool to find network pathologies — route changes that
// step the delay baseline, and a gateway 'debug' option that dumped a
// burst of work every 90 seconds. This example injects both into the
// simulated path and recovers them from nothing but the probe trace.
//
// Run with:
//
//	go run ./examples/anomaly
package main

import (
	"fmt"
	"log"
	"time"

	"netprobe/internal/core"
	"netprobe/internal/dynamics"
	"netprobe/internal/route"
)

func main() {
	log.SetFlags(0)

	// --- Pathology 1: a route change 4 minutes in (+15 ms one way).
	p := route.INRIAToUMd()
	cross := core.DefaultINRIACross()
	tr1, err := core.RunSim(core.SimConfig{
		Path:     p,
		Delta:    50 * time.Millisecond,
		Duration: 8 * time.Minute,
		Seed:     5,
		Cross:    &cross,
		RouteChange: &core.RouteChange{
			At:    4 * time.Minute,
			Hop:   3, // the transatlantic link is rerouted
			Shift: 15 * time.Millisecond,
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("experiment 1: %s, route change injected at 4m (+30 ms RTT)\n", tr1)
	shift, err := dynamics.DetectLevelShift(tr1, 0, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("detected: baseline %.1f → %.1f ms (Δ %.1f ms) at probe %d (t ≈ %v)\n\n",
		shift.BeforeMs, shift.AfterMs, shift.ShiftMs(), shift.Index, shift.At.Round(time.Second))

	// --- Pathology 2: the 'debug' gateway burst every 90 seconds.
	// The misbehaving gateway of [22] parked seconds of work: give
	// its queue the deep buffer such a software bug implies, so the
	// surge rises well above ordinary cross-traffic queueing.
	p2 := route.INRIAToUMd()
	p2.Hops[3].Buffer = 80
	tr2, err := core.RunSim(core.SimConfig{
		Path:     p2,
		Delta:    500 * time.Millisecond,
		Duration: 15 * time.Minute,
		Seed:     6,
		Cross:    &cross,
		Anomaly: &core.Anomaly{
			Period: 90 * time.Second,
			Burst:  80,
			Size:   512,
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("experiment 2: %s, gateway burst injected every 90 s\n", tr2)
	per, err := dynamics.DetectPeriodicity(tr2, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("detected: delay surges every %v (lag %d probes, autocorrelation %.2f)\n",
		per.Period.Round(time.Second), per.Lag, per.Correlation)
	fmt.Println("\n(the May-1992 original took a debugging hunt; the probe trace alone carries the signature)")
}
