// Prediction example: the §3 companion question. The paper notes that
// predictive control mechanisms rest on AR/MA/ARMA models of queueing
// delay and reports a parallel study of whether those models are
// adequate. This example fits an AR model to the first half of a
// simulated probe trace, selects its order by AIC, and compares its
// one-step-ahead forecasts of rtt_{n+1} against the TCP-style EWMA
// estimator and naive baselines on the second half.
//
// Run with:
//
//	go run ./examples/prediction
package main

import (
	"fmt"
	"log"
	"time"

	"netprobe/internal/core"
	"netprobe/internal/tsa"
)

func main() {
	log.SetFlags(0)

	tr, err := core.INRIAUMd(50*time.Millisecond, 5*time.Minute, 8)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(tr)

	rtts := tr.RTTMillis()
	half := len(rtts) / 2
	train, test := rtts[:half], rtts[half:]

	ar, err := tsa.SelectAR(train, 10)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nAIC-selected AR(%d): φ = %.3v, mean %.1f ms, σ² %.1f\n",
		ar.Order(), ar.Phi, ar.Mean, ar.Sigma2)

	arma, err := tsa.FitARMA(train, 2, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ARMA(2,1): φ = %.3v, θ = %.3v\n", arma.Phi, arma.Theta)

	// Residual whiteness: does the linear model exhaust the
	// structure? The Ljung–Box statistic near the lag count means
	// yes; far above means the queueing dynamics carry structure an
	// ARMA view misses.
	fmt.Printf("Ljung–Box(10) of AR residuals: %.1f (white ≈ 10)\n",
		tsa.LjungBox(ar.Residuals(train), 10))

	fmt.Printf("\none-step-ahead forecasts of rtt (held-out half, %d probes):\n", len(test))
	fmt.Printf("%-16s %10s %10s %10s\n", "predictor", "MSE", "MAE", "medianAE")
	for _, ev := range tsa.Compare(test, 20,
		ar,
		arma,
		tsa.EWMA{Alpha: 0.125},
		tsa.MovingAverage{Window: 16},
		tsa.LastValue{},
	) {
		fmt.Printf("%-16s %10.1f %10.2f %10.2f\n", ev.Predictor, ev.MSE, ev.MAE, ev.MedianAE)
	}
	fmt.Println("\n(ms²/ms; the AR forecaster should beat the persistence and EWMA baselines)")
}
