// Diurnal cycle example: the related work the paper builds on ([19],
// Mukherjee) sent groups of probes once a minute for days and found,
// by spectral analysis, "a clear diurnal cycle, suggesting the
// presence of a base congestion level which changes slowly with
// time". This example compresses that experiment to simulation scale:
// the Internet stream's intensity swings sinusoidally with an 8-minute
// "day" (core.SimConfig.Modulated), probes sample the path once a
// second, per-group delay means are computed as in [19], and the
// periodogram of that series recovers the cycle.
//
// Where [19] measured many days, we run several independent "weeks"
// (one per derived seed) concurrently on internal/runner's pool and
// check that every replication recovers the injected period.
//
// Run with:
//
//	go run ./examples/diurnal
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"netprobe/internal/core"
	"netprobe/internal/runner"
	"netprobe/internal/stats"
)

func main() {
	log.SetFlags(0)

	const (
		day      = 8 * time.Minute // the compressed "day"
		duration = 40 * time.Minute
		delta    = time.Second
		group    = 10 // probes per averaging group, as in [19]
		runs     = 4  // independent replications
	)

	preset := core.INRIAPreset()
	var jobs []runner.Job
	for i := 0; i < runs; i++ {
		cfg := preset.Config(delta, duration, 0)
		cfg.Cross = nil  // the modulated stream is the whole load
		cfg.ClockRes = 0 // exact clock, as in the [19] analysis
		for h := range cfg.Path.Hops {
			cfg.Path.Hops[h].LossProb = 0
		}
		cfg.Modulated = &core.ModulatedCross{
			Size: 512, Gap: 53 * time.Millisecond,
			Depth: 0.6, Period: day,
		}
		jobs = append(jobs, runner.Job{
			Label:  fmt.Sprintf("week %d", i+1),
			Config: cfg,
		})
	}
	results := runner.Run(context.Background(), 3, jobs)
	if err := runner.FirstErr(results); err != nil {
		log.Fatal(err)
	}

	samplePeriod := time.Duration(group) * delta
	var minAll, maxAll float64
	for i, r := range results {
		means := core.GroupMeans(r.Trace, group)
		freq, power := stats.DominantFrequency(means)
		if freq == 0 {
			log.Fatalf("%s: no dominant frequency found", r.Label)
		}
		period := time.Duration(float64(samplePeriod) / freq)
		fmt.Printf("%s: %d probes, %d group means; dominant spectral period %v (power %.0f)\n",
			r.Label, r.Trace.Len(), len(means), period.Round(10*time.Second), power)
		sum, err := stats.Summarize(means)
		if err != nil {
			log.Fatal(err)
		}
		if i == 0 || sum.Min < minAll {
			minAll = sum.Min
		}
		if i == 0 || sum.Max > maxAll {
			maxAll = sum.Max
		}
	}
	fmt.Printf("\ninjected congestion cycle: period %v — recovered by every replication\n", day)
	fmt.Printf("group-mean delay across runs: min %.1f ms, max %.1f ms — the swing is the \"base congestion level which changes slowly with time\" of [19]\n",
		minAll, maxAll)
}
