// Diurnal cycle example: the related work the paper builds on ([19],
// Mukherjee) sent groups of probes once a minute for days and found,
// by spectral analysis, "a clear diurnal cycle, suggesting the
// presence of a base congestion level which changes slowly with
// time". This example compresses that experiment to simulation scale:
// the Internet stream's intensity swings sinusoidally with an 8-minute
// "day", probes sample the path once a second, per-group delay means
// are computed as in [19], and the periodogram of that series recovers
// the cycle.
//
// Run with:
//
//	go run ./examples/diurnal
package main

import (
	"fmt"
	"log"
	"time"

	"netprobe/internal/core"
	"netprobe/internal/route"
	"netprobe/internal/sim"
	"netprobe/internal/stats"
	"netprobe/internal/traffic"
)

func main() {
	log.SetFlags(0)

	const (
		day      = 8 * time.Minute // the compressed "day"
		duration = 40 * time.Minute
		delta    = time.Second
		group    = 10 // probes per averaging group, as in [19]
	)

	sched := sim.NewScheduler()
	var factory sim.Factory
	p := route.INRIAToUMd()
	for i := range p.Hops {
		p.Hops[i].LossProb = 0
	}

	count := int(duration / delta)
	tr := &core.Trace{
		Name: "diurnal", Delta: delta, PayloadSize: 32, WireSize: 72,
		BottleneckBps: 128_000, Samples: make([]core.Sample, count),
	}
	built := route.Build(sched, p, route.BuildOptions{
		Seed: 3,
		Deliver: func(pkt *sim.Packet, at time.Duration) {
			if !pkt.Probe || pkt.Seq >= count {
				return
			}
			s := &tr.Samples[pkt.Seq]
			s.Recv, s.RTT, s.Lost = at, at-s.Sent, false
		},
	})

	// The slowly breathing load: a modulated packet stream whose
	// intensity swings between ≈25% and ≈95% of the bottleneck over
	// each "day".
	traffic.NewModulated(sched, &factory, "base", 512, 53*time.Millisecond,
		0.6, day, duration+time.Minute, 7, built.BottleneckForward()).Start()

	src := sim.NewPeriodicSource(sched, &factory, "probe", 72, delta, count, 0, built.Head)
	src.OnSend(func(seq int, at time.Duration) {
		tr.Samples[seq] = core.Sample{Seq: seq, Sent: at, Lost: true}
	})
	src.Start()
	sched.Run(duration + time.Minute)

	means := core.GroupMeans(tr, group)
	fmt.Printf("%s: %d probes, %d group means (groups of %d)\n",
		tr.Name, tr.Len(), len(means), group)

	freq, power := stats.DominantFrequency(means)
	if freq == 0 {
		log.Fatal("no dominant frequency found")
	}
	samplePeriod := time.Duration(group) * delta
	period := time.Duration(float64(samplePeriod) / freq)
	fmt.Printf("dominant spectral component: period %v (power %.0f)\n", period.Round(10*time.Second), power)
	fmt.Printf("injected congestion cycle:   period %v\n\n", day)

	sum, err := stats.Summarize(means)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("group-mean delay: min %.1f ms, max %.1f ms — the swing is the \"base congestion level which changes slowly with time\" of [19]\n",
		sum.Min, sum.Max)
}
