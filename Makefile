GO ?= go

# perf-gate inputs: BASELINE is the committed reference artifact (a
# run manifest or a BENCH_*.json snapshot); CURRENT defaults to the
# manifest the experiments command writes.
BASELINE ?=
CURRENT ?= experiments-manifest.json

.PHONY: build test race vet bench bench-snapshot check perf-gate

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The experiment runner (internal/runner) and the obs registry are
# the repository's real concurrency; the race detector is part of the
# standard check. vet runs over every package, including the new
# instrumentation set (internal/obs, cmd/benchjson).
race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# bench-snapshot records the whole benchmark suite as a
# machine-readable baseline (benchmark name -> ns/op plus custom
# metrics) for perf PRs to regress against.
bench-snapshot:
	$(GO) test -bench=. -benchmem ./... | $(GO) run ./cmd/benchjson > BENCH_$$(date +%Y-%m-%d).json
	@echo "wrote BENCH_$$(date +%Y-%m-%d).json"

check: build vet race

# perf-gate diffs the current run artifact against a baseline and
# fails on regression (wall-time ratios with a noise floor, exact loss
# stats). Usage:
#
#   make perf-gate BASELINE=baseline-manifest.json
#   make perf-gate BASELINE=BENCH_2026-07-01.json CURRENT=BENCH_2026-08-05.json
perf-gate:
	@test -n "$(BASELINE)" || { echo "usage: make perf-gate BASELINE=<manifest-or-bench.json> [CURRENT=$(CURRENT)]"; exit 2; }
	$(GO) run ./cmd/manifestdiff $(BASELINE) $(CURRENT)
