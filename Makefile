GO ?= go

.PHONY: build test race vet bench bench-snapshot check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The experiment runner (internal/runner) and the obs registry are
# the repository's real concurrency; the race detector is part of the
# standard check. vet runs over every package, including the new
# instrumentation set (internal/obs, cmd/benchjson).
race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# bench-snapshot records the whole benchmark suite as a
# machine-readable baseline (benchmark name -> ns/op plus custom
# metrics) for perf PRs to regress against.
bench-snapshot:
	$(GO) test -bench=. -benchmem ./... | $(GO) run ./cmd/benchjson > BENCH_$$(date +%Y-%m-%d).json
	@echo "wrote BENCH_$$(date +%Y-%m-%d).json"

check: build vet race
