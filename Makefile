GO ?= go

.PHONY: build test race vet bench check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The experiment runner (internal/runner) is the repository's first
# real concurrency; the race detector is part of the standard check.
race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

bench:
	$(GO) test -bench=. -benchmem ./...

check: build vet race
