GO ?= go

# perf-gate inputs: BASELINE is the committed reference artifact (a
# run manifest or a BENCH_*.json snapshot, default: the committed
# benchmark baseline); CURRENT is the artifact to gate, e.g. the
# manifest the experiments command writes or a fresh bench snapshot.
BASELINE ?= BENCH_2026-08-08.json
CURRENT ?= experiments-manifest.json

.PHONY: build test race vet vet-tags bench bench-snapshot chaos check perf-gate online-demo sources-demo health-demo

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The experiment runner (internal/runner) and the obs registry are
# the repository's real concurrency; the race detector is part of the
# standard check. vet runs over every package, including the new
# instrumentation set (internal/obs, cmd/benchjson).
race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# The tag matrix: the pure-Go network/user-lookup builds are how the
# netdyn commands are cross-compiled for probe boxes, so vet must stay
# clean under them too. ./... covers every package, including the
# source layer (internal/source, cmd/netdyn-relay).
vet-tags: vet
	$(GO) vet -tags netgo ./...
	$(GO) vet -tags netgo,osusergo ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# bench-snapshot records the whole benchmark suite as a
# machine-readable baseline (benchmark name -> ns/op plus custom
# metrics) for perf PRs to regress against.
bench-snapshot:
	$(GO) test -bench=. -benchmem ./... | $(GO) run ./cmd/benchjson > BENCH_$$(date +%Y-%m-%d).json
	@echo "wrote BENCH_$$(date +%Y-%m-%d).json"

# chaos runs the fault-injection suite under the race detector: the
# seeded sim chaos sweep (byte-identical traces at any worker count),
# the real-socket loopback run with drops, transient send errors, and
# blackhole windows against a supervised session, and the pipeline
# conservation tests (produced == applied + Σ drops under those same
# faults, at any worker count).
chaos:
	$(GO) test -race -count=1 ./internal/faultinject/... ./internal/pipestat/...

check: build vet-tags race chaos sources-demo health-demo

# online-demo smoke-tests the online analysis engine end to end: a
# short seeded sweep with -online, the /online handler curled while
# the process lingers, and the online.* gauges on /metrics.
ONLINE_ADDR ?= 127.0.0.1:6061

online-demo:
	@$(GO) build -o /tmp/netprobe-bolotsim ./cmd/bolotsim
	@/tmp/netprobe-bolotsim -delta 20ms,50ms -duration 5s -seed 42 \
		-online -linger 5s -debug-addr $(ONLINE_ADDR) & \
	pid=$$!; sleep 2; \
	echo "--- GET /online ---"; \
	curl -sf http://$(ONLINE_ADDR)/online || { kill $$pid; exit 1; }; \
	echo "--- online gauges on /metrics ---"; \
	curl -sf http://$(ONLINE_ADDR)/metrics | grep '^online_'; \
	wait $$pid

# sources-demo smoke-tests the Source layer end to end over loopback:
# a netdyn-relay collector accepts a wire-framed event stream from a
# seeded bolotsim sweep, and the relay's /online analysis and
# per-source counters (source_events, source_dropped, relay_conns) are
# curled while the stream is live. Lossless by default, so the relayed
# numbers equal a local -online run.
SOURCES_RELAY ?= 127.0.0.1:6070
SOURCES_ADDR ?= 127.0.0.1:6071

sources-demo:
	@$(GO) build -o /tmp/netprobe-relay ./cmd/netdyn-relay
	@$(GO) build -o /tmp/netprobe-bolotsim ./cmd/bolotsim
	@/tmp/netprobe-relay -listen $(SOURCES_RELAY) -debug-addr $(SOURCES_ADDR) & \
	pid=$$!; sleep 1; \
	/tmp/netprobe-bolotsim -delta 20ms,50ms -duration 5s -seed 42 \
		-relay $(SOURCES_RELAY) || { kill $$pid; exit 1; }; \
	sleep 1; \
	echo "--- GET /online (relayed analysis) ---"; \
	curl -sf http://$(SOURCES_ADDR)/online || { kill $$pid; exit 1; }; \
	echo "--- source counters on /metrics ---"; \
	curl -sf http://$(SOURCES_ADDR)/metrics | grep -E '^(source_|relay_)' \
		|| { kill $$pid; exit 1; }; \
	kill -INT $$pid; wait $$pid

# health-demo smoke-tests the self-observability plane end to end: a
# relay comes up (ready once the listener binds), /healthz reports ok,
# a seeded sweep streams events in with heartbeats, and the final
# /statusz shows the per-source table and a conservation ledger with
# nothing unaccounted. The relay is given a short -stale-after so the
# staleness machinery is armed (the streams stay fresh, so it must
# still report ok while connected).
HEALTH_RELAY ?= 127.0.0.1:6080
HEALTH_ADDR ?= 127.0.0.1:6081

health-demo:
	@$(GO) build -o /tmp/netprobe-relay ./cmd/netdyn-relay
	@$(GO) build -o /tmp/netprobe-bolotsim ./cmd/bolotsim
	@/tmp/netprobe-relay -listen $(HEALTH_RELAY) -debug-addr $(HEALTH_ADDR) \
		-stale-after 2s & \
	pid=$$!; sleep 1; \
	echo "--- GET /healthz (idle relay) ---"; \
	curl -sf http://$(HEALTH_ADDR)/healthz | grep '"status": "ok"' \
		|| { kill $$pid; exit 1; }; echo; \
	/tmp/netprobe-bolotsim -delta 20ms,50ms -duration 5s -seed 42 \
		-relay $(HEALTH_RELAY) >/dev/null || { kill $$pid; exit 1; }; \
	sleep 1; \
	echo "--- GET /healthz (after streaming) ---"; \
	curl -sf http://$(HEALTH_ADDR)/healthz | grep '"status": "ok"' \
		|| { kill $$pid; exit 1; }; echo; \
	echo "--- /statusz: sources and pipeline ledger ---"; \
	status=$$(curl -sf http://$(HEALTH_ADDR)/statusz) || { kill $$pid; exit 1; }; \
	echo "$$status" | grep '"sources"' >/dev/null || { kill $$pid; exit 1; }; \
	echo "$$status" | grep '"unaccounted": 0,\?' >/dev/null \
		|| { echo "$$status"; echo "pipeline ledger not balanced"; kill $$pid; exit 1; }; \
	echo "$$status" | grep -o '"heartbeats": [0-9]*'; \
	echo "--- pipeline gauges on /metrics ---"; \
	curl -sf http://$(HEALTH_ADDR)/metrics | grep -E '^pipeline_' \
		|| { kill $$pid; exit 1; }; \
	kill -INT $$pid; wait $$pid

# perf-gate diffs the current run artifact against a baseline and
# fails on regression (wall-time ratios with a noise floor, exact loss
# stats). Usage:
#
#   make perf-gate BASELINE=baseline-manifest.json
#   make perf-gate BASELINE=BENCH_2026-07-01.json CURRENT=BENCH_2026-08-05.json
perf-gate:
	@test -n "$(BASELINE)" || { echo "usage: make perf-gate BASELINE=<manifest-or-bench.json> [CURRENT=$(CURRENT)]"; exit 2; }
	$(GO) run ./cmd/manifestdiff $(BASELINE) $(CURRENT)
