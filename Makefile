GO ?= go

# perf-gate inputs: BASELINE is the committed reference artifact (a
# run manifest or a BENCH_*.json snapshot, default: the committed
# benchmark baseline); CURRENT is the artifact to gate, e.g. the
# manifest the experiments command writes or a fresh bench snapshot.
BASELINE ?= BENCH_2026-08-09.json
CURRENT ?= experiments-manifest.json

.PHONY: build test race vet vet-tags bench bench-snapshot bench-current chaos fleet-chaos check perf-gate perf-gate-check online-demo sources-demo health-demo dashboard-demo fleet-load fleet-demo

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The experiment runner (internal/runner) and the obs registry are
# the repository's real concurrency; the race detector is part of the
# standard check. vet runs over every package, including the new
# instrumentation set (internal/obs, cmd/benchjson).
race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# The tag matrix: the pure-Go network/user-lookup builds are how the
# netdyn commands are cross-compiled for probe boxes, so vet must stay
# clean under them too. ./... covers every package, including the
# source layer (internal/source, cmd/netdyn-relay).
vet-tags: vet
	$(GO) vet -tags netgo ./...
	$(GO) vet -tags netgo,osusergo ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# bench-snapshot records the whole benchmark suite as a
# machine-readable baseline (benchmark name -> ns/op plus custom
# metrics) for perf PRs to regress against.
bench-snapshot:
	$(GO) test -bench=. -benchmem ./... | $(GO) run ./cmd/benchjson > BENCH_$$(date +%Y-%m-%d).json
	@echo "wrote BENCH_$$(date +%Y-%m-%d).json"

# chaos runs the fault-injection suite under the race detector: the
# seeded sim chaos sweep (byte-identical traces at any worker count),
# the real-socket loopback run with drops, transient send errors, and
# blackhole windows against a supervised session, the pipeline
# conservation tests (produced == applied + Σ drops under those same
# faults, at any worker count), the sharded-vs-single online
# equivalence suite under a chaos fault plan, and the coordinator
# lifecycle tests (retries, disconnect re-queues) over real loopback
# control connections.
chaos:
	$(GO) test -race -count=1 ./internal/faultinject/... ./internal/pipestat/... \
		./internal/online/... ./internal/coord/...

# fleet-chaos is the full-fleet chaos soak (coord.RunChaos): a journaled
# coordinator, agents, and a relay on loopback, with a seeded schedule
# SIGKILLing the coordinator (journal abandoned mid-stream), random
# agents, and the relay mid-campaign under a fault-injection plan.
# Asserts every instance settles exactly once, the journal replays to
# the same final table, and the pipeline ledger balances. CHAOS_SECONDS
# scales the campaign; CHAOS_SEED reschedules the kills.
CHAOS_SECONDS ?= 4
CHAOS_SEED ?= 1

fleet-chaos:
	CHAOS_SECONDS=$(CHAOS_SECONDS) CHAOS_SEED=$(CHAOS_SEED) \
		$(GO) test -race -count=1 -run 'TestFleetChaos|TestChaosCoordinatorKillExactlyOnce' \
		-v ./internal/coord/

check: build vet-tags race chaos fleet-chaos sources-demo health-demo dashboard-demo fleet-demo perf-gate-check

# online-demo smoke-tests the online analysis engine end to end: a
# short seeded sweep with -online, the /online handler curled while
# the process lingers, and the online.* gauges on /metrics.
ONLINE_ADDR ?= 127.0.0.1:6061

online-demo:
	@$(GO) build -o /tmp/netprobe-bolotsim ./cmd/bolotsim
	@/tmp/netprobe-bolotsim -delta 20ms,50ms -duration 5s -seed 42 \
		-online -linger 5s -debug-addr $(ONLINE_ADDR) & \
	pid=$$!; sleep 2; \
	echo "--- GET /online ---"; \
	curl -sf http://$(ONLINE_ADDR)/online || { kill $$pid; exit 1; }; \
	echo "--- online gauges on /metrics ---"; \
	curl -sf http://$(ONLINE_ADDR)/metrics | grep '^online_'; \
	wait $$pid

# sources-demo smoke-tests the Source layer end to end over loopback:
# a netdyn-relay collector accepts a wire-framed event stream from a
# seeded bolotsim sweep, and the relay's /online analysis and
# per-source counters (source_events, source_dropped, relay_conns) are
# curled while the stream is live. Lossless by default, so the relayed
# numbers equal a local -online run.
SOURCES_RELAY ?= 127.0.0.1:6070
SOURCES_ADDR ?= 127.0.0.1:6071

sources-demo:
	@$(GO) build -o /tmp/netprobe-relay ./cmd/netdyn-relay
	@$(GO) build -o /tmp/netprobe-bolotsim ./cmd/bolotsim
	@/tmp/netprobe-relay -listen $(SOURCES_RELAY) -debug-addr $(SOURCES_ADDR) & \
	pid=$$!; sleep 1; \
	/tmp/netprobe-bolotsim -delta 20ms,50ms -duration 5s -seed 42 \
		-relay $(SOURCES_RELAY) || { kill $$pid; exit 1; }; \
	sleep 1; \
	echo "--- GET /online (relayed analysis) ---"; \
	curl -sf http://$(SOURCES_ADDR)/online || { kill $$pid; exit 1; }; \
	echo "--- source counters on /metrics ---"; \
	curl -sf http://$(SOURCES_ADDR)/metrics | grep -E '^(source_|relay_)' \
		|| { kill $$pid; exit 1; }; \
	kill -INT $$pid; wait $$pid

# health-demo smoke-tests the self-observability plane end to end: a
# relay comes up (ready once the listener binds), /healthz reports ok,
# a seeded sweep streams events in with heartbeats, and the final
# /statusz shows the per-source table and a conservation ledger with
# nothing unaccounted. The relay is given a short -stale-after so the
# staleness machinery is armed (the streams stay fresh, so it must
# still report ok while connected).
HEALTH_RELAY ?= 127.0.0.1:6080
HEALTH_ADDR ?= 127.0.0.1:6081

health-demo:
	@$(GO) build -o /tmp/netprobe-relay ./cmd/netdyn-relay
	@$(GO) build -o /tmp/netprobe-bolotsim ./cmd/bolotsim
	@/tmp/netprobe-relay -listen $(HEALTH_RELAY) -debug-addr $(HEALTH_ADDR) \
		-stale-after 2s & \
	pid=$$!; sleep 1; \
	echo "--- GET /healthz (idle relay) ---"; \
	curl -sf http://$(HEALTH_ADDR)/healthz | grep '"status": "ok"' \
		|| { kill $$pid; exit 1; }; echo; \
	/tmp/netprobe-bolotsim -delta 20ms,50ms -duration 5s -seed 42 \
		-relay $(HEALTH_RELAY) >/dev/null || { kill $$pid; exit 1; }; \
	sleep 1; \
	echo "--- GET /healthz (after streaming) ---"; \
	curl -sf http://$(HEALTH_ADDR)/healthz | grep '"status": "ok"' \
		|| { kill $$pid; exit 1; }; echo; \
	echo "--- /statusz: sources and pipeline ledger ---"; \
	status=$$(curl -sf http://$(HEALTH_ADDR)/statusz) || { kill $$pid; exit 1; }; \
	echo "$$status" | grep '"sources"' >/dev/null || { kill $$pid; exit 1; }; \
	echo "$$status" | grep '"unaccounted": 0,\?' >/dev/null \
		|| { echo "$$status"; echo "pipeline ledger not balanced"; kill $$pid; exit 1; }; \
	echo "$$status" | grep -o '"heartbeats": [0-9]*'; \
	echo "--- pipeline gauges on /metrics ---"; \
	curl -sf http://$(HEALTH_ADDR)/metrics | grep -E '^pipeline_' \
		|| { kill $$pid; exit 1; }; \
	kill -INT $$pid; wait $$pid

# fleet-load drives the 10k-session fleet benchmark once: a real
# coordinator and sharded relay on loopback, 16 agents, 10,000
# concurrent probe sessions held at a start barrier so peak concurrency
# is exact. Reports sessions/s, events/s, and per-event allocation —
# the same numbers the committed BENCH baseline carries, so a perf PR
# reruns this and diffs via perf-gate.
fleet-load:
	$(GO) test -run '^$$' -bench BenchmarkFleetLoad -benchmem -benchtime 1x ./internal/coord/

# fleet-demo smoke-tests fleet mode end to end over loopback: a
# 4-shard relay, a coordinator with a three-spec jobs file (two sim
# jobs, one real probe job against a local echo server), and three
# agents that register, execute, and stream tagged events to the relay.
# Asserts every job completes (coordinator exits 0 from -wait), the
# coordinator's /statusz shows the settled job table during -linger,
# the relay's merged /online carries the per-job rows, the per-shard
# gauges are exported, and the relay's conservation ledger balances.
FLEET_ECHO ?= 127.0.0.1:6095
FLEET_COORD ?= 127.0.0.1:6096
FLEET_RELAY ?= 127.0.0.1:6097
FLEET_RDBG ?= 127.0.0.1:6098
FLEET_CDBG ?= 127.0.0.1:6099

fleet-demo:
	@$(GO) build -o /tmp/netprobe-echo ./cmd/netdyn-echo
	@$(GO) build -o /tmp/netprobe-relay ./cmd/netdyn-relay
	@$(GO) build -o /tmp/netprobe-coord ./cmd/netdyn-coord
	@$(GO) build -o /tmp/netprobe-probe ./cmd/netdyn-probe
	@tmp=$$(mktemp -d); trap 'rm -rf "$$tmp"' EXIT; \
	printf '%s\n' '[{"name":"inria-20","mode":"sim","target":"inria","delta":"20ms","duration":"5s","seed":1},' \
		' {"name":"inria-50","mode":"sim","target":"inria","delta":"50ms","duration":"5s","seed":2},' \
		' {"name":"lab-probe","mode":"probe","target":"$(FLEET_ECHO)","delta":"10ms","count":100,"seed":3}]' \
		> $$tmp/jobs.json; \
	/tmp/netprobe-echo -addr $(FLEET_ECHO) -quiet & \
	epid=$$!; \
	/tmp/netprobe-relay -listen $(FLEET_RELAY) -shards 4 -debug-addr $(FLEET_RDBG) & \
	rpid=$$!; sleep 1; \
	/tmp/netprobe-coord -listen $(FLEET_COORD) -jobs $$tmp/jobs.json \
		-wait -linger 6s -debug-addr $(FLEET_CDBG) & \
	cpid=$$!; sleep 1; \
	apids=""; for i in 1 2 3; do \
		/tmp/netprobe-probe -agent $(FLEET_COORD) -agent-name agent$$i -capacity 2 \
			-relay $(FLEET_RELAY) >/dev/null & \
		apids="$$apids $$!"; \
	done; \
	echo "--- waiting for the 3 jobs to settle ---"; \
	ok=0; for i in $$(seq 1 60); do \
		curl -s http://$(FLEET_CDBG)/statusz | grep -q '"completed": 3' && { ok=1; break; }; \
		sleep 0.5; \
	done; \
	test $$ok = 1 || { echo "jobs never settled"; curl -s http://$(FLEET_CDBG)/statusz; \
		kill $$apids $$cpid $$rpid $$epid 2>/dev/null; exit 1; }; \
	echo "--- coordinator /statusz: settled job table ---"; \
	curl -sf http://$(FLEET_CDBG)/statusz | grep -A 4 '"jobs": {' \
		|| { kill $$apids $$cpid $$rpid $$epid 2>/dev/null; exit 1; }; \
	echo "--- relay /online: per-job fleet analysis ---"; \
	online=$$(curl -sf http://$(FLEET_RDBG)/online) \
		|| { kill $$apids $$cpid $$rpid $$epid 2>/dev/null; exit 1; }; \
	for job in inria-20 inria-50 lab-probe; do \
		echo "$$online" | grep -q "$$job" \
			|| { echo "job $$job missing from /online"; \
			kill $$apids $$cpid $$rpid $$epid 2>/dev/null; exit 1; }; \
	done; \
	echo "--- per-shard gauges on /metrics ---"; \
	curl -sf http://$(FLEET_RDBG)/metrics | grep '^online_shard' | head -4 \
		|| { kill $$apids $$cpid $$rpid $$epid 2>/dev/null; exit 1; }; \
	echo "--- relay ledger balances ---"; \
	ok=0; for i in $$(seq 1 20); do \
		curl -s http://$(FLEET_RDBG)/statusz | grep -q '"unaccounted": 0,\?' && { ok=1; break; }; \
		sleep 0.25; \
	done; \
	test $$ok = 1 || { echo "relay ledger not balanced"; curl -s http://$(FLEET_RDBG)/statusz; \
		kill $$apids $$cpid $$rpid $$epid 2>/dev/null; exit 1; }; \
	kill -INT $$apids; for a in $$apids; do wait $$a; done; \
	wait $$cpid || { echo "coordinator reported failed jobs"; kill $$rpid $$epid 2>/dev/null; exit 1; }; \
	kill -INT $$rpid; wait $$rpid; \
	kill $$epid 2>/dev/null; true

# perf-gate diffs the current run artifact against a baseline and
# fails on regression (wall-time ratios with a noise floor, exact loss
# stats). Usage:
#
#   make perf-gate BASELINE=baseline-manifest.json
#   make perf-gate BASELINE=BENCH_2026-07-01.json CURRENT=BENCH_2026-08-05.json
perf-gate:
	@test -n "$(BASELINE)" || { echo "usage: make perf-gate BASELINE=<manifest-or-bench.json> [CURRENT=$(CURRENT)]"; exit 2; }
	$(GO) run ./cmd/manifestdiff $(BASELINE) $(CURRENT)

# bench-current records a quick benchmark pass (reduced benchtime) as
# /tmp/BENCH_current.json; bench-snapshot remains the full-resolution
# recorder for committed baselines.
bench-current:
	$(GO) test -bench=. -benchmem -benchtime=0.3s ./... | $(GO) run ./cmd/benchjson > /tmp/BENCH_current.json
	@echo "wrote /tmp/BENCH_current.json"

# perf-gate-check is the make-check flavor of the perf gate: the
# committed baseline against a quick current pass, with a loose 2x
# tolerance so it catches order-of-magnitude regressions without
# flaking on machine noise or the reduced benchtime.
perf-gate-check: bench-current
	$(GO) run ./cmd/manifestdiff -bench-tol 2.0 $(BASELINE) /tmp/BENCH_current.json

# dashboard-demo smoke-tests the metrics-history and alerting plane end
# to end over loopback: an unsupervised prober with an injected
# blackhole window probes a local echo server; /vars/history advances
# between scrapes, /dashboard renders, and the loss_spike rule fires
# during the blackhole (alerts_active gauge, /healthz 503, alert events
# in the trace) and clears after the loss window flushes.
DASH_ECHO ?= 127.0.0.1:6090
DASH_ADDR ?= 127.0.0.1:6091

dashboard-demo:
	@$(GO) build -o /tmp/netprobe-echo ./cmd/netdyn-echo
	@$(GO) build -o /tmp/netprobe-probe ./cmd/netdyn-probe
	@tmp=$$(mktemp -d); trap 'rm -rf "$$tmp"' EXIT; \
	echo '{"seed":7,"blackholes":[{"start":"3s","end":"6s"}]}' > $$tmp/faults.json; \
	echo '[{"name":"loss_spike","type":"threshold","series":"online.ulp*","max":0.2,"for":2,"clear_for":2}]' > $$tmp/rules.json; \
	/tmp/netprobe-echo -addr $(DASH_ECHO) -quiet & \
	epid=$$!; sleep 1; \
	/tmp/netprobe-probe -target $(DASH_ECHO) -delta 20ms -count 700 \
		-supervise=false -faults $$tmp/faults.json -online -online-window 100 \
		-history-interval 250ms -alert-rules $$tmp/rules.json \
		-trace $$tmp/events.jsonl -report 0 -debug-addr $(DASH_ADDR) >/dev/null & \
	ppid=$$!; sleep 1.5; \
	echo "--- /vars/history advances between scrapes ---"; \
	s1=$$(curl -sf http://$(DASH_ADDR)/vars/history | grep -o '"samples": [0-9]*' | grep -o '[0-9]*') \
		|| { kill $$ppid $$epid; exit 1; }; \
	sleep 1; \
	s2=$$(curl -sf http://$(DASH_ADDR)/vars/history | grep -o '"samples": [0-9]*' | grep -o '[0-9]*') \
		|| { kill $$ppid $$epid; exit 1; }; \
	echo "samples: $$s1 -> $$s2"; \
	test "$$s2" -gt "$$s1" || { echo "history not advancing"; kill $$ppid $$epid; exit 1; }; \
	curl -sf http://$(DASH_ADDR)/dashboard | grep -q '<svg' \
		|| { echo "dashboard missing sparklines"; kill $$ppid $$epid; exit 1; }; \
	echo "--- loss_spike fires during the blackhole ---"; \
	code=0; for i in $$(seq 1 32); do \
		code=$$(curl -s -o /dev/null -w '%{http_code}' http://$(DASH_ADDR)/healthz); \
		[ "$$code" = 503 ] && break; sleep 0.25; \
	done; \
	test "$$code" = 503 || { echo "/healthz never degraded"; kill $$ppid $$epid; exit 1; }; \
	curl -sf http://$(DASH_ADDR)/metrics | grep 'alerts_active{rule="loss_spike"} 1' \
		|| { echo "alerts_active gauge not set"; kill $$ppid $$epid; exit 1; }; \
	echo "--- and clears once the loss window flushes ---"; \
	for i in $$(seq 1 40); do \
		code=$$(curl -s -o /dev/null -w '%{http_code}' http://$(DASH_ADDR)/healthz); \
		[ "$$code" = 200 ] && break; sleep 0.25; \
	done; \
	test "$$code" = 200 || { echo "/healthz never recovered"; kill $$ppid $$epid; exit 1; }; \
	wait $$ppid || { kill $$epid; exit 1; }; \
	grep -q '"ev":"alert"' $$tmp/events.jsonl \
		|| { echo "no alert events in the trace"; kill $$epid; exit 1; }; \
	grep -c '"ev":"alert"' $$tmp/events.jsonl; \
	kill $$epid 2>/dev/null; true
