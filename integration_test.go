// End-to-end integration tests: the full pipeline a user of this
// library walks — collect (simulated and real-UDP), persist, reload,
// analyze — plus cross-validation of the simulator against queueing
// theory.
package netprobe

import (
	"math"
	"math/rand"
	"path/filepath"
	"testing"
	"time"

	"netprobe/internal/core"
	"netprobe/internal/fec"
	"netprobe/internal/loss"
	"netprobe/internal/netdyn"
	"netprobe/internal/phase"
	"netprobe/internal/queue"
	"netprobe/internal/route"
	"netprobe/internal/sim"
	"netprobe/internal/stats"
	"netprobe/internal/trace"
	"netprobe/internal/traffic"
	"netprobe/internal/workload"
)

// TestFullPipelineSimulated: simulate → save CSV → reload → all four
// analyses agree with the configured ground truth.
func TestFullPipelineSimulated(t *testing.T) {
	tr, err := core.INRIAUMd(20*time.Millisecond, 3*time.Minute, 2026)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "run.csv")
	if err := trace.Save(path, tr); err != nil {
		t.Fatal(err)
	}
	got, err := trace.Load(path)
	if err != nil {
		t.Fatal(err)
	}

	// Phase analysis finds the transatlantic link.
	est, err := phase.EstimateBottleneck(got, 0)
	if err != nil {
		t.Fatal(err)
	}
	if est.BottleneckBps < 90_000 || est.BottleneckBps > 170_000 {
		t.Errorf("bottleneck estimate %v", est)
	}
	if est.FixedDelayMs < 130 || est.FixedDelayMs > 150 {
		t.Errorf("fixed delay estimate %v", est.FixedDelayMs)
	}

	// Workload analysis finds the FTP packets.
	a, err := workload.Analyze(got, float64(got.BottleneckBps), 1.5)
	if err != nil {
		t.Fatal(err)
	}
	if a.CompressionPeak == nil || a.IdlePeak == nil {
		t.Errorf("workload peaks missing: %v", a)
	}

	// Loss analysis sees near-random moderate loss.
	ls := loss.AnalyzeTrace(got)
	if ls.ULP < 0.03 || ls.ULP > 0.30 {
		t.Errorf("loss %v", ls)
	}
	if ls.CLP+0.05 < ls.ULP {
		t.Errorf("clp < ulp: %v", ls)
	}

	// FEC evaluation is coherent: repetition cannot do worse than raw.
	rep := fec.Repetition(got.LossIndicator())
	if rep.ResidualLossRate > ls.ULP {
		t.Errorf("repetition residual %v above raw %v", rep.ResidualLossRate, ls.ULP)
	}
}

// TestFullPipelineRealUDP: probe a real loopback echo server with an
// injected loss pattern and run the same analyses.
func TestFullPipelineRealUDP(t *testing.T) {
	e, err := netdyn.NewEchoer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	e.SetDropper(func(seq uint32) bool { return seq%10 == 3 })
	tr, err := netdyn.Probe(netdyn.ProbeConfig{
		Target: e.Addr().String(),
		Delta:  2 * time.Millisecond,
		Count:  500,
		Drain:  time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "real.json")
	if err := trace.Save(path, tr); err != nil {
		t.Fatal(err)
	}
	got, err := trace.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	ls := loss.AnalyzeTrace(got)
	if math.Abs(ls.ULP-0.1) > 0.04 {
		t.Errorf("ulp = %v, want ≈0.1", ls.ULP)
	}
	// The injected pattern is isolated losses: plg ≈ 1.
	if !ls.IsEssentiallyRandom(0.2) {
		t.Errorf("pattern should be loss-gap ≈ 1: %v", ls)
	}
}

// TestSimulatorMatchesMD1 validates the discrete-event engine against
// the Pollaczek–Khinchine mean-wait formula for an M/D/1 queue.
func TestSimulatorMatchesMD1(t *testing.T) {
	s := sim.NewScheduler()
	var f sim.Factory
	var totalWait time.Duration
	n := 0
	sink := sim.NewSink(s, func(pkt *sim.Packet, at time.Duration) {
		// Wait = departure − arrival − service.
		svc := time.Duration(int64(pkt.Size) * 8 * int64(time.Second) / 1_000_000)
		totalWait += at - pkt.SentAt - svc
		n++
	})
	q := sim.NewQueue(s, "md1", 1_000_000, 1<<20, sink)
	// λ chosen for ρ = 0.7: service = 1 ms (125 B at 1 Mb/s),
	// inter-arrival mean = 1/0.7 ms.
	horizon := 2000 * time.Second
	msf := float64(time.Millisecond)
	gap := time.Duration(msf / 0.7)
	traffic.NewPoisson(s, &f, "load", 125, gap, horizon, 11, q).Start()
	s.Run(horizon + time.Minute)
	got := totalWait.Seconds() / float64(n)
	want := queue.MD1MeanWait(700, 0.001)
	if math.Abs(got-want) > 0.05*want {
		t.Fatalf("simulated M/D/1 wait %v s, formula %v s (n=%d)", got, want, n)
	}
}

// TestSimulatorMatchesMM1KLoss validates finite-buffer drops against
// the M/M/1/K blocking formula.
func TestSimulatorMatchesMM1KLoss(t *testing.T) {
	// Exponential packet sizes approximate exponential service.
	s := sim.NewScheduler()
	var f sim.Factory
	sink := sim.NewSink(s, nil)
	const k = 5 // 1 in service + 4 waiting
	q := sim.NewQueue(s, "mm1k", 1_000_000, k-1, sink)
	sizeDist := traffic.Exp(125) // mean 125 B ⇒ mean service 1 ms
	horizon := 3000 * time.Second
	// Hand-rolled Poisson arrivals with exponential sizes (the stock
	// generators use fixed sizes).
	rnd := rand.New(rand.NewSource(13))
	i := 0
	var arrive func()
	arrive = func() {
		size := int(sizeDist.Sample(rnd))
		if size < 1 {
			size = 1
		}
		pkt := f.New("load", i, size, s.Now())
		i++
		q.Receive(pkt)
		gap := time.Duration(rnd.ExpFloat64() * float64(time.Millisecond) / 0.8)
		if s.Now()+gap < horizon {
			s.After(gap, arrive)
		}
	}
	s.At(0, arrive)
	s.Run(horizon + time.Minute)
	st := q.Stats(s.Now())
	got := float64(st.Dropped) / float64(st.Arrived)
	want := queue.MM1KLossProbability(0.8, k)
	if math.Abs(got-want) > 0.25*want {
		t.Fatalf("simulated M/M/1/%d loss %v, formula %v (arrived %d)", k, got, want, st.Arrived)
	}
}

// TestRapidQueueFluctuations verifies the abstract's observation that
// queueing delays fluctuate rapidly over small intervals: the
// bottleneck backlog sampled every 10 ms swings by many packets, and
// its variance-time curve decays much slower than the 1/m of
// uncorrelated noise (the load is bursty across time scales).
func TestRapidQueueFluctuations(t *testing.T) {
	s := sim.NewScheduler()
	var f sim.Factory
	sink := sim.NewSink(s, nil)
	q := sim.NewQueue(s, "bottleneck", 128_000, 64, sink)
	horizon := 10 * time.Minute
	for i := 0; i < 3; i++ {
		traffic.NewBulk(s, &f, "ftp", 512, 1_544_000,
			traffic.Exp(0.3), traffic.Geometric(2), horizon, int64(i+1), q).Start()
	}
	traffic.NewPoisson(s, &f, "telnet", 64, 40*time.Millisecond, horizon, 9, q).Start()
	mon := sim.NewMonitor(s, q, 10*time.Millisecond, horizon)
	mon.Start()
	s.Run(horizon)

	xs := mon.SamplesFloat()
	sum, err := stats.Summarize(xs)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Max < 4 {
		t.Fatalf("backlog never exceeded %v packets; no fluctuations to speak of", sum.Max)
	}
	vt := stats.VarianceTime(xs, []int{1, 100})
	ratio := vt[100] / vt[1]
	if ratio < 3.0/100 {
		t.Fatalf("backlog decorrelates like white noise (ratio %v); the load should be bursty", ratio)
	}
	// And the series is strongly autocorrelated at one-sample lag:
	// queues drain gradually, they do not jump independently.
	acf := stats.Autocorrelation(xs, 1)
	if acf[1] < 0.5 {
		t.Fatalf("lag-1 autocorrelation %v, want high", acf[1])
	}
}

// TestDiurnalCycleDetected compresses the [19] experiment: a slowly
// breathing background load leaves its period in the spectrum of
// per-group delay means.
func TestDiurnalCycleDetected(t *testing.T) {
	const (
		day      = 8 * time.Minute
		duration = 40 * time.Minute
		delta    = time.Second
		group    = 10
	)
	sched := sim.NewScheduler()
	var factory sim.Factory
	p := route.INRIAToUMd()
	for i := range p.Hops {
		p.Hops[i].LossProb = 0
	}
	count := int(duration / delta)
	tr := &core.Trace{
		Name: "diurnal", Delta: delta, PayloadSize: 32, WireSize: 72,
		Samples: make([]core.Sample, count),
	}
	built := route.Build(sched, p, route.BuildOptions{
		Seed: 3,
		Deliver: func(pkt *sim.Packet, at time.Duration) {
			if !pkt.Probe || pkt.Seq >= count {
				return
			}
			s := &tr.Samples[pkt.Seq]
			s.Recv, s.RTT, s.Lost = at, at-s.Sent, false
		},
	})
	traffic.NewModulated(sched, &factory, "base", 512, 53*time.Millisecond,
		0.6, day, duration+time.Minute, 7, built.BottleneckForward()).Start()
	src := sim.NewPeriodicSource(sched, &factory, "probe", 72, delta, count, 0, built.Head)
	src.OnSend(func(seq int, at time.Duration) {
		tr.Samples[seq] = core.Sample{Seq: seq, Sent: at, Lost: true}
	})
	src.Start()
	sched.Run(duration + time.Minute)

	means := core.GroupMeans(tr, group)
	freq, _ := stats.DominantFrequency(means)
	if freq == 0 {
		t.Fatal("no dominant frequency")
	}
	period := time.Duration(float64(group) * float64(delta) / freq)
	if period < 6*time.Minute || period > 11*time.Minute {
		t.Fatalf("detected period %v, want ≈%v", period, day)
	}
}
