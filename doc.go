// Package netprobe is a reproduction of Jean-Chrysostome Bolot's
// SIGCOMM '93 paper "End-to-End Packet Delay and Loss Behavior in the
// Internet".
//
// The repository contains the paper's measurement tool (a real UDP
// prober and echo server, package internal/netdyn), a discrete-event
// network simulator standing in for the 1992/93 Internet paths the
// paper measured (internal/sim, internal/route, internal/traffic),
// the paper's analyses — phase plots and bottleneck estimation
// (internal/phase), workload estimation via Lindley's recurrence
// (internal/workload, internal/queue), and loss statistics
// (internal/loss) — and the applications it motivates
// (internal/fec). The benchmarks in bench_test.go regenerate every
// table and figure; cmd/experiments prints them next to the paper's
// reported values.
//
// See README.md for a tour and DESIGN.md for the full system
// inventory.
package netprobe
