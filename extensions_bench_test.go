// Benchmarks for the extension experiments: the §3 ARMA/prediction
// companion study, the route-change and periodic-anomaly diagnoses of
// the companion works [21, 22], and the grouped-probe baseline of
// [19]. These regenerate the "optional/future work" results the paper
// points at but does not tabulate.
package netprobe

import (
	"math"
	"testing"
	"time"

	"netprobe/internal/core"
	"netprobe/internal/dynamics"
	"netprobe/internal/sim"
	"netprobe/internal/stats"
	"netprobe/internal/tcp"
	"netprobe/internal/tsa"
)

// BenchmarkARPrediction fits an AIC-selected AR model to half a probe
// trace and reports its held-out advantage over persistence
// forecasting (MSE ratio < 1 means the AR model wins — the §3
// "prediction problem").
func BenchmarkARPrediction(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		tr, err := core.INRIAUMd(50*time.Millisecond, 2*time.Minute, int64(i))
		if err != nil {
			b.Fatal(err)
		}
		rtts := tr.RTTMillis()
		half := len(rtts) / 2
		m, err := tsa.SelectAR(rtts[:half], 8)
		if err != nil {
			b.Fatal(err)
		}
		evs := tsa.Compare(rtts[half:], 10, m, tsa.LastValue{})
		if evs[1].MSE > 0 {
			ratio = evs[0].MSE / evs[1].MSE
		}
	}
	b.ReportMetric(ratio, "mseVsLastValue")
}

// BenchmarkRouteChangeDetection regenerates the [21] observation: a
// mid-run route change recovered from the RTT baseline.
func BenchmarkRouteChangeDetection(b *testing.B) {
	var shiftMs float64
	for i := 0; i < b.N; i++ {
		cfg := core.INRIAPreset().Config(50*time.Millisecond, 4*time.Minute, int64(i))
		cfg.ClockRes = 0
		cfg.RouteChange = &core.RouteChange{
			At:    2 * time.Minute,
			Hop:   3,
			Shift: 15 * time.Millisecond,
		}
		tr, err := core.RunSim(cfg)
		if err != nil {
			b.Fatal(err)
		}
		shift, err := dynamics.DetectLevelShift(tr, 0, 0)
		if err != nil {
			b.Fatal(err)
		}
		shiftMs = shift.ShiftMs()
	}
	b.ReportMetric(shiftMs, "shift_ms")
}

// BenchmarkAnomalyDetection regenerates the [22] observation: the
// every-90-seconds gateway burst recovered from the probe
// autocorrelation.
func BenchmarkAnomalyDetection(b *testing.B) {
	var period float64
	for i := 0; i < b.N; i++ {
		cfg := core.INRIAPreset().Config(500*time.Millisecond, 15*time.Minute, int64(i))
		cfg.ClockRes = 0
		cfg.Path.Hops[3].Buffer = 80
		cfg.Anomaly = &core.Anomaly{Period: 90 * time.Second, Burst: 80, Size: 512}
		tr, err := core.RunSim(cfg)
		if err != nil {
			b.Fatal(err)
		}
		per, err := dynamics.DetectPeriodicity(tr, 0)
		if err != nil {
			b.Fatal(err)
		}
		period = per.Period.Seconds()
	}
	b.ReportMetric(period, "period_s")
}

// BenchmarkGroupedBaseline runs the [19] methodology — groups of 10
// probes, averaged, fitted with a constant-plus-gamma model — on the
// simulated path.
func BenchmarkGroupedBaseline(b *testing.B) {
	var shape float64
	for i := 0; i < b.N; i++ {
		cfg := core.INRIAPreset().Config(time.Second, 0, int64(i))
		cfg.ClockRes = 0
		cfg.SendTimes = core.GroupedSchedule(30, 10, time.Second, 20*time.Second)
		tr, err := core.RunSim(cfg)
		if err != nil {
			b.Fatal(err)
		}
		fit, err := core.FitGroupedGamma(tr)
		if err != nil {
			b.Fatal(err)
		}
		shape = fit.Shape
		_ = core.GroupMeans(tr, 10)
	}
	b.ReportMetric(shape, "gammaShape")
}

// BenchmarkDiurnalSpectrum detects a slow sinusoidal congestion cycle
// (the [19] diurnal analysis, compressed to simulation scale) in the
// spectrum of grouped delay means.
func BenchmarkDiurnalSpectrum(b *testing.B) {
	var freq float64
	for i := 0; i < b.N; i++ {
		// A long low-rate probe run over a modulated load would be
		// the full experiment; here the spectral tooling itself is
		// exercised on a synthetic diurnal series.
		series := make([]float64, 1024)
		for t := range series {
			series[t] = 150 + 20*math.Sin(2*math.Pi*float64(t)/128) + float64(t%7)
		}
		freq, _ = stats.DominantFrequency(series)
	}
	b.ReportMetric(1/freq, "period_samples")
}

// BenchmarkTCPTransfer measures a complete closed-loop transfer over
// the transatlantic-like dumbbell, reporting achieved goodput.
func BenchmarkTCPTransfer(b *testing.B) {
	var goodput float64
	for i := 0; i < b.N; i++ {
		sched := sim.NewScheduler()
		var f sim.Factory
		d := tcp.NewDumbbell(sched, 128_000, 20, 35*time.Millisecond)
		c := tcp.NewConn(sched, &f, "A", tcp.Options{Total: 1000})
		d.AttachForward(c)
		var doneAt time.Duration
		c.OnDone(func(at time.Duration) { doneAt = at })
		c.Start(0)
		sched.Run(time.Hour)
		if doneAt > 0 {
			goodput = float64(1000*512*8) / doneAt.Seconds()
		}
	}
	b.ReportMetric(goodput/1000, "goodput_kbps")
}

// BenchmarkAckCompression measures the two-way-traffic ACK compression
// fraction (the [29] phenomenon).
func BenchmarkAckCompression(b *testing.B) {
	dataSvc := time.Duration(512 * 8 * int64(time.Second) / 128_000)
	var frac float64
	for i := 0; i < b.N; i++ {
		sched := sim.NewScheduler()
		var f sim.Factory
		d := tcp.NewDumbbell(sched, 128_000, 20, 35*time.Millisecond)
		a := tcp.NewConn(sched, &f, "A", tcp.Options{Total: 1000})
		c := tcp.NewConn(sched, &f, "B", tcp.Options{Total: 1000})
		d.AttachForward(a)
		d.AttachReverse(c)
		a.Start(0)
		c.Start(0)
		sched.Run(30 * time.Minute)
		frac = tcp.CompressionFraction(a.AckArrivalTimes(), dataSvc)
	}
	b.ReportMetric(frac, "comprFrac")
}
