// End-to-end graceful-shutdown tests: SIGTERM mid-run must leave
// readable artifacts — a complete otrace event file and partial trace
// from netdyn-probe, and a valid manifest recording the cancelled
// jobs from experiments.
package netprobe

import (
	"bytes"
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"netprobe/internal/netdyn"
	"netprobe/internal/otrace"
	"netprobe/internal/runner"
	"netprobe/internal/trace"
)

// buildTool compiles one of the repo's commands into dir and returns
// the binary path.
func buildTool(t *testing.T, dir, pkg string) string {
	t.Helper()
	bin := filepath.Join(dir, filepath.Base(pkg))
	cmd := exec.Command("go", "build", "-o", bin, "./"+pkg)
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("build %s: %v\n%s", pkg, err, out)
	}
	return bin
}

// terminate delivers SIGTERM and waits for the process to exit,
// returning its combined output.
func terminate(t *testing.T, cmd *exec.Cmd, out *bytes.Buffer, after time.Duration) string {
	t.Helper()
	time.Sleep(after)
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatalf("signal: %v", err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("process exited non-zero after SIGTERM: %v\n%s", err, out.String())
		}
	case <-time.After(30 * time.Second):
		cmd.Process.Kill() //nolint:errcheck
		t.Fatalf("process ignored SIGTERM\n%s", out.String())
	}
	return out.String()
}

// TestGracefulShutdownProbe: SIGTERM mid-run stops netdyn-probe
// cleanly — exit 0, partial loss statistics on stdout, a fully
// readable event trace (no truncated tail), and a loadable CSV trace
// of the probes sent so far.
func TestGracefulShutdownProbe(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second subprocess test")
	}
	echo, err := netdyn.NewEchoer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer echo.Close()

	dir := t.TempDir()
	bin := buildTool(t, dir, "cmd/netdyn-probe")
	events := filepath.Join(dir, "events.jsonl")
	csv := filepath.Join(dir, "run.csv")
	// 3000 probes at 20 ms ≈ a minute: the signal lands mid-run.
	cmd := exec.Command(bin,
		"-target", echo.Addr().String(),
		"-delta", "20ms", "-count", "3000", "-report", "0",
		"-trace", events, "-out", csv)
	var out bytes.Buffer
	cmd.Stdout, cmd.Stderr = &out, &out
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	stdout := terminate(t, cmd, &out, 2*time.Second)
	if !strings.Contains(stdout, "interrupted by signal") {
		t.Errorf("no interruption notice in output:\n%s", stdout)
	}
	if !strings.Contains(stdout, "trace written to") {
		t.Errorf("partial trace not written:\n%s", stdout)
	}

	// The event file must be complete and readable: the bounded sink
	// and writer were closed on the way out.
	var sent, runStarts int
	if err := otrace.ReadFile(events, func(ev otrace.Event) error {
		switch ev.Ev {
		case otrace.KindRunStart:
			runStarts++
		case otrace.KindProbeSent:
			sent++
		}
		return nil
	}); err != nil {
		t.Fatalf("event trace unreadable after SIGTERM: %v", err)
	}
	if runStarts != 1 || sent == 0 {
		t.Errorf("event trace has %d run_start and %d probe_sent events", runStarts, sent)
	}
	if sent >= 3000 {
		t.Errorf("run was not actually interrupted: %d probes sent", sent)
	}

	tr, err := trace.Load(csv)
	if err != nil {
		t.Fatalf("partial CSV trace unreadable: %v", err)
	}
	if len(tr.Samples) == 0 || len(tr.Samples) != sent {
		t.Errorf("CSV trace has %d samples, event trace sent %d", len(tr.Samples), sent)
	}
}

// TestGracefulShutdownExperiments: SIGTERM mid-sweep stops the
// experiments driver cleanly — exit 0, a valid manifest covering the
// partial sweep with the undispatched jobs marked cancelled, and
// readable trace files for every job that did complete.
func TestGracefulShutdownExperiments(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second subprocess test")
	}
	dir := t.TempDir()
	bin := buildTool(t, dir, "cmd/experiments")
	manifest := filepath.Join(dir, "manifest.json")
	traces := filepath.Join(dir, "traces")
	// One worker serializes the sweep so the signal is guaranteed to
	// land before the last job has been dispatched.
	cmd := exec.Command(bin,
		"-quick", "-workers", "1", "-seed", "42",
		"-manifest", manifest, "-trace-dir", traces)
	var out bytes.Buffer
	cmd.Stdout, cmd.Stderr = &out, &out
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	stdout := terminate(t, cmd, &out, 1500*time.Millisecond)
	if !strings.Contains(stdout, "interrupted") {
		t.Errorf("no interruption notice in output:\n%s", stdout)
	}

	data, err := os.ReadFile(manifest)
	if err != nil {
		t.Fatalf("manifest missing after SIGTERM: %v", err)
	}
	var m runner.Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatalf("manifest is not valid JSON: %v", err)
	}
	if m.Summary.Jobs == 0 || m.Summary.Jobs != len(m.Jobs) {
		t.Fatalf("manifest jobs %d vs summary %d", len(m.Jobs), m.Summary.Jobs)
	}
	if m.Summary.Cancelled == 0 {
		t.Errorf("summary records no cancelled jobs: %+v", m.Summary)
	}
	if m.Summary.Completed == 0 {
		t.Errorf("summary records no completed jobs: %+v", m.Summary)
	}
	// Every completed job's trace file must be fully readable.
	for _, j := range m.Jobs {
		if j.Error != "" || j.TraceFile == "" {
			continue
		}
		if err := otrace.ReadFile(j.TraceFile, func(otrace.Event) error { return nil }); err != nil {
			t.Errorf("job %d (%s): trace unreadable: %v", j.Index, j.Label, err)
		}
	}
}
